"""Tests for the runtime intrinsics."""

import math

import pytest

from tests.helpers import run_c


class TestPrintf:
    def test_basic_conversions(self):
        src = r"""
        int main(void) {
            printf("%d|%c|%s|%f|%%\n", -42, 'z', "text", 1.25);
            return 0;
        }
        """
        assert run_c(src).output == "-42|z|text|1.250000|%\n"

    def test_width_and_precision(self):
        src = r"""
        int main(void) {
            printf("[%5d][%-5d][%.2f]\n", 42, 42, 3.14159);
            return 0;
        }
        """
        assert run_c(src).output == "[   42][42   ][3.14]\n"

    def test_hex_and_octal_output(self):
        src = r"""
        int main(void) { printf("%x %o\n", 255, 8); return 0; }
        """
        assert run_c(src).output == "ff 10\n"

    def test_returns_char_count(self):
        src = r"""
        int main(void) { return printf("abcd\n"); }
        """
        assert run_c(src).exit_code == 5

    def test_putchar_puts(self):
        src = r"""
        int main(void) {
            putchar('h');
            putchar('i');
            putchar('\n');
            puts("there");
            return 0;
        }
        """
        assert run_c(src).output == "hi\nthere\n"


class TestMath:
    def test_sqrt(self):
        src = 'int main(void) { printf("%f\\n", sqrt(16.0)); return 0; }'
        assert float(run_c(src).output) == pytest.approx(4.0)

    def test_pow(self):
        src = 'int main(void) { printf("%f\\n", pow(2.0, 10.0)); return 0; }'
        assert float(run_c(src).output) == pytest.approx(1024.0)

    def test_trig_identity(self):
        src = r"""
        int main(void) {
            double x;
            x = 0.7;
            printf("%f\n", sin(x) * sin(x) + cos(x) * cos(x));
            return 0;
        }
        """
        assert float(run_c(src).output) == pytest.approx(1.0)

    def test_exp_log_roundtrip(self):
        src = 'int main(void) { printf("%f\\n", log(exp(2.0))); return 0; }'
        assert float(run_c(src).output) == pytest.approx(2.0)

    def test_fabs_abs(self):
        src = r"""
        int main(void) {
            printf("%f %d\n", fabs(-2.5), abs(-7));
            return 0;
        }
        """
        assert run_c(src).output.strip() == "2.500000 7"

    def test_floor(self):
        src = 'int main(void) { printf("%f\\n", floor(2.9)); return 0; }'
        assert float(run_c(src).output) == pytest.approx(2.0)

    def test_int_arg_promoted_to_double(self):
        src = 'int main(void) { printf("%f\\n", sqrt(25)); return 0; }'
        assert float(run_c(src).output) == pytest.approx(5.0)


class TestStringsAndMemory:
    def test_strlen(self):
        src = r"""
        int main(void) { printf("%d\n", (int) strlen("hello")); return 0; }
        """
        assert run_c(src).output.strip() == "5"

    def test_strcmp(self):
        src = r"""
        int main(void) {
            printf("%d %d %d\n",
                   strcmp("a", "b") < 0,
                   strcmp("b", "a") > 0,
                   strcmp("same", "same") == 0);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "1 1 1"

    def test_strcpy(self):
        src = r"""
        int main(void) {
            char buf[16];
            strcpy(buf, "copied");
            printf("%s\n", buf);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "copied"

    def test_memset_zero(self):
        src = r"""
        int main(void) {
            int arr[4];
            arr[0] = 9; arr[1] = 9; arr[2] = 9; arr[3] = 9;
            memset(arr, 0, 16);
            printf("%d %d\n", arr[0], arr[3]);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "0 0"

    def test_memcpy(self):
        src = r"""
        int main(void) {
            int src_a[3];
            int dst_a[3];
            src_a[0] = 1; src_a[1] = 2; src_a[2] = 3;
            memcpy(dst_a, src_a, 12);
            printf("%d %d %d\n", dst_a[0], dst_a[1], dst_a[2]);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "1 2 3"

    def test_calloc_zeroes(self):
        src = r"""
        int main(void) {
            int *p;
            p = (int *) calloc(4, 4);
            printf("%d\n", p[0] + p[3]);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "0"


class TestRand:
    def test_range(self):
        src = r"""
        int main(void) {
            int i;
            int v;
            srand(123);
            for (i = 0; i < 100; i++) {
                v = rand();
                if (v < 0 || v > 32767) { return 1; }
            }
            return 0;
        }
        """
        assert run_c(src).exit_code == 0

    def test_srand_controls_sequence(self):
        src_a = r"""
        int main(void) { srand(1); printf("%d\n", rand()); return 0; }
        """
        src_b = r"""
        int main(void) { srand(2); printf("%d\n", rand()); return 0; }
        """
        assert run_c(src_a).output != run_c(src_b).output


class TestPrintfLengthModifiers:
    """Regression: every length modifier (h and l alike) is stripped for
    integer conversions — %hd used to leak the 'h' into Python's
    formatter and raise."""

    def test_h_and_l_modifiers(self):
        src = r"""
        int main(void) {
            printf("%hd %hu %ld %lu %hhd %lld\n", 1, 2, 3, 4, 5, 6);
            return 0;
        }
        """
        assert run_c(src).output == "1 2 3 4 5 6\n"

    def test_modifier_with_width(self):
        src = r"""
        int main(void) { printf("[%4hd][%-4ld]\n", 7, 8); return 0; }
        """
        assert run_c(src).output == "[   7][8   ]\n"


class TestMemBulkOps:
    """Guards for the bulk-update memset/memcpy fast paths."""

    def test_memset_nonzero_value(self):
        src = r"""
        int main(void) {
            char buf[8];
            memset(buf, 65, 7);
            buf[7] = 0;
            printf("%s\n", buf);
            return 0;
        }
        """
        assert run_c(src).output == "AAAAAAA\n"

    def test_memset_value_truncated_to_byte(self):
        src = r"""
        int main(void) {
            char buf[2];
            memset(buf, 321, 1);  /* 321 & 0xFF == 65 == 'A' */
            buf[1] = 0;
            printf("%s\n", buf);
            return 0;
        }
        """
        assert run_c(src).output == "A\n"

    def test_memset_zero_count_writes_nothing(self):
        src = r"""
        int main(void) {
            char buf[4];
            buf[0] = 'x'; buf[1] = 0;
            memset(buf, 65, 0);
            printf("%s\n", buf);
            return 0;
        }
        """
        assert run_c(src).output == "x\n"

    def test_memcpy_forward_overlap_propagates(self):
        # dst inside [src, src+count): C UB that our byte-at-a-time loop
        # resolves deterministically by re-reading freshly written bytes;
        # the bulk path must never change this
        src = r"""
        int main(void) {
            char b[10];
            b[0]='a'; b[1]='b'; b[2]='c'; b[3]='d';
            b[4]='e'; b[5]='f'; b[6]='g'; b[7]='h'; b[8]=0;
            memcpy(b + 2, b, 6);
            printf("%s\n", b);
            return 0;
        }
        """
        assert run_c(src).output == "abababab\n"

    def test_memcpy_backward_overlap(self):
        src = r"""
        int main(void) {
            char b[10];
            b[0]='a'; b[1]='b'; b[2]='c'; b[3]='d';
            b[4]='e'; b[5]='f'; b[6]='g'; b[7]='h'; b[8]=0;
            memcpy(b, b + 2, 6);
            printf("%s\n", b);
            return 0;
        }
        """
        assert run_c(src).output == "cdefghgh\n"


class TestIntrinsicCallPath:
    def test_intrinsic_accepts_tuple_args(self):
        # the threaded engine's call thunks pass tuples, the reference
        # engine passes lists; both must work
        from repro.frontend import compile_c
        from repro.interp import Machine, MachineOptions

        module = compile_c("int main(void) { return 0; }")
        machine = Machine(module, MachineOptions())
        assert machine._exec_intrinsic("labs", (-5,)) == 5
        assert machine._exec_intrinsic("labs", [-5]) == 5

"""Property-based tests for the register allocator.

Generates random straight-line-plus-loops IL via the C grammar from the
differential tester, then checks the allocator's core guarantees:

* the coloring is a proper coloring of the final interference graph
  (adjacent nodes get different colors) within the K budget;
* allocation at any K preserves program semantics;
* coalescing never changes observable behaviour.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import compute_liveness
from repro.frontend import compile_c
from repro.interp import MachineOptions, run_module
from repro.regalloc import RegAllocOptions, allocate_function, build_interference
from tests.props.test_differential_props import programs


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs(), st.sampled_from([4, 8, 16, 32]))
def test_coloring_is_proper_and_semantics_preserved(source, k):
    machine = MachineOptions(max_steps=2_000_000)
    expected = run_module(compile_c(source), options=machine)

    module = compile_c(source)
    options = RegAllocOptions(num_registers=k)
    for func in module.functions.values():
        report = allocate_function(func, options)
        coloring = report.coloring
        # proper coloring over the post-spill interference graph
        graph = build_interference(func, compute_liveness(func))
        for node, neighbors in graph.adjacency.items():
            if node not in coloring:
                continue
            assert coloring[node] < k
            for other in neighbors:
                if other in coloring:
                    assert coloring[node] != coloring[other], (
                        f"{func.name}: nodes {node} and {other} share color"
                    )

    actual = run_module(module, options=machine)
    assert actual.output == expected.output
    assert actual.exit_code == expected.exit_code


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_coalescing_preserves_semantics_and_reduces_copies(source):
    machine = MachineOptions(max_steps=2_000_000)
    expected = run_module(compile_c(source), options=machine)

    coalesced = compile_c(source)
    plain = compile_c(source)
    for func in coalesced.functions.values():
        allocate_function(func, RegAllocOptions(coalesce=True))
    for func in plain.functions.values():
        allocate_function(func, RegAllocOptions(coalesce=False))

    run_coalesced = run_module(coalesced, options=machine)
    run_plain = run_module(plain, options=machine)
    assert run_coalesced.output == run_plain.output == expected.output
    assert run_coalesced.counters.copies <= run_plain.counters.copies

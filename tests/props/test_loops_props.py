"""Property-based tests for loop discovery and normalization on random
CFGs (the same generator that cross-checks dominators against networkx)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import find_loops, normalize_loops
from repro.ir.cfg import predecessors, reachable_labels
from repro.ir.verify import verify_function
from tests.analysis.test_dominators import build_cfg


@st.composite
def random_cfgs(draw):
    n = draw(st.integers(min_value=3, max_value=18))
    labels = [f"N{i}" for i in range(n)]
    edges = {}
    for label in labels:
        fanout = draw(st.integers(min_value=0, max_value=2))
        succs = tuple(
            draw(st.sampled_from(labels)) for _ in range(fanout)
        )
        if len(succs) == 2 and succs[0] == succs[1]:
            succs = (succs[0],)
        edges[label] = succs
    return edges


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_cfgs())
def test_loop_bodies_are_sane(edges):
    func = build_cfg(edges, "N0")
    dom = compute_dominators(func)
    forest = find_loops(func, dom)
    for loop in forest.loops:
        # the header dominates every block of its loop
        for label in loop.blocks:
            assert dom.dominates(loop.header, label)
        # every latch is in the body and branches to the header
        for latch in loop.latches:
            assert latch in loop.blocks
            assert loop.header in func.block(latch).successors()
        # nesting is strict containment
        if loop.parent is not None:
            assert loop.blocks < loop.parent.blocks
            assert loop.depth == loop.parent.depth + 1


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_cfgs())
def test_normalization_establishes_contract(edges):
    func = build_cfg(edges, "N0")
    forest = normalize_loops(func)
    verify_function(func)
    preds = predecessors(func)
    reachable = reachable_labels(func)
    for loop in forest.loops:
        # exactly one outside predecessor whose only successor is the
        # header (the landing pad)
        outside = [
            p for p in preds[loop.header]
            if p not in loop.blocks and p in reachable
        ]
        assert len(outside) == 1
        assert func.block(outside[0]).successors() == (loop.header,)
        # every exit block is dedicated: all its predecessors in the loop
        for exit_label in loop.exit_blocks(func):
            assert all(p in loop.blocks for p in preds[exit_label])


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_cfgs())
def test_normalization_preserves_loop_count(edges):
    func = build_cfg(edges, "N0")
    before = {loop.header for loop in find_loops(func).loops}
    after_forest = normalize_loops(func)
    after = {loop.header for loop in after_forest.loops}
    assert before == after

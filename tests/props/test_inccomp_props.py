"""Property tests for the incremental-compilation cache keys.

Three properties, per the key's contract (`repro.inccomp.keys`):

1. **Soundness** — same key ⇒ byte-identical optimized body, across
   independent stores and across a population of generated programs.
2. **Invalidation precision** — a summary-neutral edit to one function
   changes only that function's key; a summary-*changing* edit changes
   the keys of the edited function and its transitive callers, and of
   nothing else.
3. **Options sensitivity** — any change to pipeline options changes
   every function's key.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.frontend import compile_c
from repro.inccomp import (
    FunctionStore,
    function_digest,
    function_key,
    module_env_digest,
    mutate_function,
    options_digest,
)
from repro.ir.printer import format_function, format_module
from repro.pipeline import (
    Analysis,
    PipelineOptions,
    compile_module,
    compile_source,
)

#: main -> outer -> inner, with `bystander` unreachable from the chain.
#: `inner` reads and writes global `g`, so its MOD/REF summary is what
#: callers' printed call sites embed.
CHAIN_SOURCE = """
int g;
int data[16];

int inner(int x) {
    int i;
    int acc = 0;
    for (i = 0; i < x; i = i + 1) { acc = acc + data[i]; }
    g = g + acc;
    return acc;
}

int outer(int n) {
    int k;
    int total = 0;
    for (k = 0; k < n; k = k + 1) { total = total + inner(k); }
    return total;
}

int bystander(int n) {
    int j;
    int s = 0;
    for (j = 0; j < n; j = j + 1) { s = s + j; }
    return s;
}

int main(void) {
    int r = outer(8) + bystander(3);
    return r - r;
}
"""


def post_analysis_keys(
    source: str, options: PipelineOptions | None = None
) -> dict[str, str]:
    """Per-function content keys at the point the pipeline computes them
    (post-analysis, pre-optimization)."""
    options = options or PipelineOptions()
    module = compile_c(source, name="prop")
    captured: dict[str, str] = {}

    def hook(stage: str, mod) -> None:
        if stage != "analysis":
            return
        env = module_env_digest(mod)
        opts = options_digest(options)
        for name, func in mod.functions.items():
            captured[name] = function_key(
                function_digest(func), env, opts, False
            )

    compile_module(module, options, stage_hook=hook)
    return captured


# ---------------------------------------------------------------------------
# 1. soundness: same key => identical optimized body
# ---------------------------------------------------------------------------

def generated_sources(count: int = 8) -> list[str]:
    from repro.fuzz.gen import GenOptions, generate_program

    return [
        generate_program(seed, GenOptions()).source for seed in range(count)
    ]


@pytest.mark.slow  # quantifies over a generated-program population
@pytest.mark.parametrize("options", [PipelineOptions()], ids=["full"])
def test_same_key_same_body_across_stores(options):
    """Two unrelated stores, same inputs: every key collision yields a
    byte-identical optimized function body."""
    bodies: dict[str, str] = {}
    for store in (FunctionStore(root=None), FunctionStore(root=None)):
        for source in generated_sources():
            result = compile_source(source, options, fn_store=store)
            assert result.fn_cache_misses + result.fn_cache_hits == len(
                result.module.functions
            )
        for key, blob in store._memory.items():
            record = store.get(key)
            body = format_function(record.function)
            assert bodies.setdefault(key, body) == body, (
                f"key {key[:12]} mapped to two different optimized bodies"
            )
    assert bodies  # the property quantified over something real


def test_recompile_is_all_hits_and_identical():
    store = FunctionStore(root=None)
    for source in generated_sources(4):
        first = compile_source(source, PipelineOptions(), fn_store=store)
        again = compile_source(source, PipelineOptions(), fn_store=store)
        assert again.fn_cache_misses == 0
        assert format_module(again.module) == format_module(first.module)


# ---------------------------------------------------------------------------
# 2. invalidation precision along call edges
# ---------------------------------------------------------------------------

def test_neutral_edit_invalidates_only_the_edited_function():
    base = post_analysis_keys(CHAIN_SOURCE)
    edited_source, edited = mutate_function(CHAIN_SOURCE, "inner")
    after = post_analysis_keys(edited_source)
    assert set(after) == set(base)
    changed = {name for name in base if after[name] != base[name]}
    assert changed == {"inner"}, (
        f"dead-local edit to inner should not touch {changed - {'inner'}}"
    )


def test_summary_changing_edit_invalidates_transitive_callers():
    base = post_analysis_keys(CHAIN_SOURCE)
    # make inner write a second global: its MOD summary grows, so every
    # call site that prints `mod=...` up the chain changes too
    edited_source = CHAIN_SOURCE.replace(
        "int g;", "int g;\nint g2;"
    ).replace("g = g + acc;", "g = g + acc; g2 = acc;")
    after = post_analysis_keys(edited_source)
    changed = {name for name in base if after[name] != base[name]}
    # a new global changes the module data environment, which is part of
    # every key — but the *function digests* must isolate the chain
    base_digests = _function_digests(CHAIN_SOURCE)
    after_digests = _function_digests(edited_source)
    digest_changed = {
        name for name in base_digests if after_digests[name] != base_digests[name]
    }
    assert "inner" in digest_changed
    assert "outer" in digest_changed  # call site prints inner's new MOD set
    assert "main" in digest_changed  # transitively via outer's summary
    assert "bystander" not in digest_changed
    assert changed  # keys changed as well, env included


def _function_digests(source: str) -> dict[str, str]:
    module = compile_c(source, name="prop")
    captured: dict[str, str] = {}

    def hook(stage: str, mod) -> None:
        if stage == "analysis":
            for name, func in mod.functions.items():
                captured[name] = function_digest(func)

    compile_module(module, PipelineOptions(), stage_hook=hook)
    return captured


def test_incremental_behaviour_matches_key_prediction():
    """End-to-end: after a summary-changing edit, the whole chain is
    re-optimized but the bystander still hits."""
    store = FunctionStore(root=None)
    compile_source(CHAIN_SOURCE, PipelineOptions(), fn_store=store)
    edited_source = CHAIN_SOURCE.replace(
        "g = g + acc;", "g = g + acc; g = g * 1;"
    )
    result = compile_source(edited_source, PipelineOptions(), fn_store=store)
    # the edit stays inside inner (no new summary facts): only it misses
    assert result.fn_cache_misses == 1
    assert result.fn_cache_hits == len(result.module.functions) - 1


# ---------------------------------------------------------------------------
# 3. options changes invalidate everything
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "mutate",
    [
        lambda o: replace(o, promotion=False),
        lambda o: replace(o, analysis=Analysis.POINTER),
        lambda o: replace(o, licm=False),
        lambda o: replace(o, regalloc=replace(o.regalloc, num_registers=6)),
        lambda o: replace(
            o, promotion_options=replace(o.promotion_options, pressure_budget=4)
        ),
    ],
    ids=["promotion", "analysis", "licm", "regalloc", "pressure"],
)
def test_options_change_invalidates_every_function(mutate):
    base_options = PipelineOptions()
    changed_options = mutate(base_options)
    assert options_digest(base_options) != options_digest(changed_options)
    base = post_analysis_keys(CHAIN_SOURCE, base_options)
    after = post_analysis_keys(CHAIN_SOURCE, changed_options)
    assert all(after[name] != base[name] for name in base)


def test_options_digest_is_stable_for_equal_options():
    assert options_digest(PipelineOptions()) == options_digest(PipelineOptions())

"""Property-based tests for the promotion algorithm's invariants.

Beyond the end-to-end differential tests, these check the Figure 1
equations' structural properties on random programs:

* PROMOTABLE is always disjoint from AMBIGUOUS and contained in EXPLICIT;
* PROMOTABLE only contains scalar tags;
* LIFT sets along a loop-nest path partition: a tag is lifted around at
  most one loop on any ancestor chain;
* promotability is monotone up the loop tree: if a tag is promotable in
  a loop and referenced in the parent, it is either promotable in the
  parent or ambiguous there.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis.loops import normalize_loops
from repro.analysis.modref import run_modref
from repro.frontend import compile_c
from repro.opt.promotion import gather_block_info, solve_loop_equations
from tests.props.test_differential_props import programs


def _analyzed_functions(source):
    module = compile_c(source)
    run_modref(module)
    for func in module.functions.values():
        forest = normalize_loops(func)
        if not forest.loops:
            continue
        explicit, ambiguous = gather_block_info(
            func, frozenset(module.memory_tags())
        )
        sets = solve_loop_equations(func, forest, explicit, ambiguous)
        yield func, forest, sets


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_figure1_set_invariants(source):
    for func, forest, sets in _analyzed_functions(source):
        for loop in forest.loops:
            s = sets[loop.header]
            assert s.promotable <= s.explicit
            assert not (s.promotable & s.ambiguous)
            assert all(t.is_scalar for t in s.promotable)
            assert s.lift <= s.promotable


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_lift_unique_along_ancestor_chains(source):
    for func, forest, sets in _analyzed_functions(source):
        for loop in forest.loops:
            chain = []
            cursor = loop
            while cursor is not None:
                chain.append(cursor)
                cursor = cursor.parent
            for tag in sets[loop.header].promotable:
                lifted_at = [
                    ancestor.header
                    for ancestor in chain
                    if tag in sets[ancestor.header].lift
                ]
                assert len(lifted_at) == 1, (
                    f"{tag} lifted at {lifted_at} on chain "
                    f"{[a.header for a in chain]}"
                )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_promotability_monotone_up_the_nest(source):
    for func, forest, sets in _analyzed_functions(source):
        for loop in forest.loops:
            if loop.parent is None:
                continue
            parent_sets = sets[loop.parent.header]
            for tag in sets[loop.header].promotable:
                assert (
                    tag in parent_sets.promotable
                    or tag in parent_sets.ambiguous
                    or tag not in parent_sets.explicit
                ) and (
                    tag in parent_sets.explicit
                ), "a tag explicit in an inner loop is explicit in the parent"

"""Differential property tests: the interpreter's arithmetic vs an
independent reference model.

``test_interp_arith_props`` checks *algebraic* properties (identities,
involutions).  This file instead pins the semantics against a second,
independently-written model of C99-on-LP64 integer arithmetic:

* the model works in the **unsigned residue domain** (everything mod
  2**64, converted at the boundary), while the interpreter masks and
  sign-adjusts — two formulations that can only agree if both implement
  two's complement correctly;
* division/modulo go through exact rationals and ``math.trunc`` — C99
  6.5.5 truncation toward zero — rather than the interpreter's
  sign-fixed magnitude division;
* arithmetic right shift is modeled as floor division by a power of two.

Boundary cases (INT64_MIN / -1, INT64_MAX + 1, shift counts >= 64) are
pinned with explicit ``@example``\\ s so they run on every test
invocation, not just when Hypothesis happens to generate them.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import example, given
from hypothesis import strategies as st

from repro.errors import InterpTrap
from repro.interp import c_div, c_mod, wrap_int
from repro.interp.machine import _binop, _unop
from repro.ir.opcodes import Opcode

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1
_TWO64 = 1 << 64

int64 = st.integers(min_value=INT64_MIN, max_value=INT64_MAX)
nonzero64 = int64.filter(lambda v: v != 0)
any_int = st.integers(min_value=-(2**70), max_value=2**70)


# -- the reference model ------------------------------------------------------
def ref_wrap(value: int) -> int:
    """Two's complement via the unsigned residue domain."""
    residue = value % _TWO64
    return residue - _TWO64 if residue >= _TWO64 // 2 else residue


def ref_div(a: int, b: int) -> int:
    """C99 6.5.5: exact quotient truncated toward zero, then wrapped."""
    return ref_wrap(math.trunc(Fraction(a, b)))


def ref_mod(a: int, b: int) -> int:
    """C99 6.5.5: (a/b)*b + a%b == a."""
    return ref_wrap(a - math.trunc(Fraction(a, b)) * b)


def ref_shr(a: int, count: int) -> int:
    """Arithmetic right shift == floor division by 2**count."""
    return ref_wrap(a // (2 ** (count & 63)))


def ref_shl(a: int, count: int) -> int:
    return ref_wrap(a * (2 ** (count & 63)))


# -- wrap ---------------------------------------------------------------------
class TestWrap:
    @given(any_int)
    @example(INT64_MAX + 1)
    @example(INT64_MIN - 1)
    @example(_TWO64)
    @example(-_TWO64)
    def test_wrap_matches_reference(self, v):
        assert wrap_int(v) == ref_wrap(v)

    def test_wrap_pins(self):
        assert wrap_int(INT64_MAX + 1) == INT64_MIN
        assert wrap_int(INT64_MIN - 1) == INT64_MAX
        assert wrap_int(_TWO64) == 0
        assert wrap_int(-1) == -1


# -- division and modulo ------------------------------------------------------
class TestDivMod:
    @given(int64, nonzero64)
    @example(INT64_MIN, -1)
    @example(INT64_MIN, 1)
    @example(INT64_MAX, -1)
    @example(-7, 2)
    @example(7, -2)
    @example(-7, -2)
    def test_div_matches_reference(self, a, b):
        assert c_div(a, b) == ref_div(a, b)

    @given(int64, nonzero64)
    @example(INT64_MIN, -1)
    @example(INT64_MAX, -1)
    @example(-7, 2)
    @example(7, -2)
    def test_mod_matches_reference(self, a, b):
        assert c_mod(a, b) == ref_mod(a, b)

    def test_div_pins(self):
        # the one overflowing case of C integer division: INT64_MIN / -1
        # is UB in C; this interpreter defines it to wrap (and not trap)
        assert c_div(INT64_MIN, -1) == INT64_MIN
        assert c_mod(INT64_MIN, -1) == 0
        # truncation toward zero, not Python's floor
        assert c_div(-7, 2) == -3
        assert c_mod(-7, 2) == -1
        assert c_div(7, -2) == -3
        assert c_mod(7, -2) == 1

    @given(int64)
    def test_div_by_zero_traps(self, a):
        with pytest.raises(InterpTrap):
            c_div(a, 0)
        with pytest.raises(InterpTrap):
            c_mod(a, 0)


# -- shifts -------------------------------------------------------------------
class TestShifts:
    @given(int64, st.integers(min_value=0, max_value=200))
    @example(1, 63)
    @example(1, 64)
    @example(-1, 63)
    @example(INT64_MIN, 1)
    def test_shl_matches_reference(self, a, count):
        assert _binop(Opcode.SHL, a, count) == ref_shl(a, count)

    @given(int64, st.integers(min_value=0, max_value=200))
    @example(-1, 63)
    @example(INT64_MIN, 63)
    @example(INT64_MAX, 64)
    def test_shr_matches_reference(self, a, count):
        assert _binop(Opcode.SHR, a, count) == ref_shr(a, count)

    def test_shift_pins(self):
        assert _binop(Opcode.SHL, 1, 63) == INT64_MIN
        assert _binop(Opcode.SHL, 1, 64) == 1  # count masked to 0
        assert _binop(Opcode.SHR, -1, 63) == -1  # arithmetic, not logical
        assert _binop(Opcode.SHR, INT64_MIN, 63) == -1


# -- add/sub/mul in the residue domain ---------------------------------------
class TestRingOps:
    @given(int64, int64)
    @example(INT64_MAX, 1)
    @example(INT64_MIN, -1)
    @example(INT64_MIN, INT64_MIN)
    def test_add_matches_reference(self, a, b):
        assert _binop(Opcode.ADD, a, b) == ref_wrap(a + b)

    @given(int64, int64)
    @example(INT64_MIN, 1)
    @example(INT64_MIN, INT64_MAX)
    def test_sub_matches_reference(self, a, b):
        assert _binop(Opcode.SUB, a, b) == ref_wrap(a - b)

    @given(int64, int64)
    @example(INT64_MIN, -1)
    @example(INT64_MAX, INT64_MAX)
    @example(2**32, 2**32)
    def test_mul_matches_reference(self, a, b):
        assert _binop(Opcode.MUL, a, b) == ref_wrap(a * b)

    @given(int64)
    @example(INT64_MIN)
    def test_neg_matches_reference(self, a):
        # NEG(INT64_MIN) wraps back to INT64_MIN
        assert _unop(Opcode.NEG, a) == ref_wrap(-a)

    @given(int64)
    @example(INT64_MIN)
    @example(-1)
    def test_not_matches_reference(self, a):
        assert _unop(Opcode.NOT, a) == ref_wrap(~a)


# -- comparisons --------------------------------------------------------------
class TestCompares:
    _OPS = {
        Opcode.CMP_LT: lambda a, b: a < b,
        Opcode.CMP_LE: lambda a, b: a <= b,
        Opcode.CMP_GT: lambda a, b: a > b,
        Opcode.CMP_GE: lambda a, b: a >= b,
        Opcode.CMP_EQ: lambda a, b: a == b,
        Opcode.CMP_NE: lambda a, b: a != b,
    }

    @given(int64, int64)
    @example(INT64_MIN, INT64_MAX)
    @example(INT64_MIN, INT64_MIN)
    @example(0, INT64_MIN)
    def test_all_compares_match_reference(self, a, b):
        for op, ref in self._OPS.items():
            assert _binop(op, a, b) == int(ref(a, b))

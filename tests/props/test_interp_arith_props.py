"""Property-based tests for the interpreter's C arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.interp import c_div, c_mod, wrap_int
from repro.interp.machine import _binop, _unop
from repro.ir.opcodes import Opcode

int64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
nonzero64 = int64.filter(lambda v: v != 0)
small_int = st.integers(min_value=-(2**30), max_value=2**30)


class TestIntegerSemantics:
    @given(int64)
    def test_wrap_int_idempotent_in_range(self, v):
        assert wrap_int(v) == v

    @given(st.integers())
    def test_wrap_int_range(self, v):
        w = wrap_int(v)
        assert -(2**63) <= w <= 2**63 - 1
        assert (w - v) % (2**64) == 0

    @given(int64, nonzero64)
    def test_division_identity(self, a, b):
        q = c_div(a, b)
        r = c_mod(a, b)
        assert wrap_int(q * b + r) == a

    @given(int64, nonzero64)
    def test_remainder_sign_follows_dividend(self, a, b):
        r = c_mod(a, b)
        if r != 0:
            assert (r < 0) == (a < 0)
        assert abs(r) < abs(b)

    @given(small_int, small_int)
    def test_add_sub_roundtrip(self, a, b):
        s = _binop(Opcode.ADD, a, b)
        assert _binop(Opcode.SUB, s, b) == a

    @given(small_int)
    def test_neg_involution(self, a):
        assert _unop(Opcode.NEG, _unop(Opcode.NEG, a)) == a

    @given(int64)
    def test_not_involution(self, a):
        assert _unop(Opcode.NOT, _unop(Opcode.NOT, a)) == a

    @given(int64, int64)
    def test_comparisons_are_boolean_and_consistent(self, a, b):
        lt = _binop(Opcode.CMP_LT, a, b)
        ge = _binop(Opcode.CMP_GE, a, b)
        assert lt in (0, 1) and ge in (0, 1)
        assert lt != ge
        eq = _binop(Opcode.CMP_EQ, a, b)
        ne = _binop(Opcode.CMP_NE, a, b)
        assert eq != ne
        assert (a == b) == bool(eq)

    @given(int64, st.integers(min_value=0, max_value=63))
    def test_shift_left_matches_masked_python(self, a, s):
        assert _binop(Opcode.SHL, a, s) == wrap_int(a << s)

    @given(int64, int64)
    def test_bitwise_ops_match_python(self, a, b):
        assert _binop(Opcode.AND, a, b) == a & b
        assert _binop(Opcode.OR, a, b) == a | b
        assert _binop(Opcode.XOR, a, b) == a ^ b

    @given(small_int, small_int)
    def test_mul_matches_python_in_range(self, a, b):
        assert _binop(Opcode.MUL, a, b) == wrap_int(a * b)


class TestFloatSemantics:
    floats = st.floats(
        allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
    )

    @given(floats, floats)
    def test_float_add_matches_python(self, a, b):
        assert _binop(Opcode.ADD, a, b) == a + b

    @given(floats)
    def test_i2f_f2i_truncates(self, a):
        truncated = _unop(Opcode.F2I, a)
        assert truncated == wrap_int(int(a))

    @given(small_int)
    def test_int_to_float_exact_for_small(self, a):
        assert _unop(Opcode.I2F, a) == float(a)

    @given(floats, floats.filter(lambda v: abs(v) > 1e-9))
    def test_float_div(self, a, b):
        assert _binop(Opcode.DIV, a, b) == a / b

    @given(floats)
    def test_lnot(self, a):
        assert _unop(Opcode.LNOT, a) == (1 if a == 0 else 0)

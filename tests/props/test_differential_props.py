"""Differential property tests: random C programs must behave identically
under every optimization variant.

The generator builds small, always-terminating programs from a fixed
grammar (bounded for-loops, if/else, global and local integer scalars,
a global array, pure helper calls), then checks that the unoptimized
module and all four paper pipeline variants print the same output.
Any divergence is a miscompile in some pass.
"""

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.interp import MachineOptions, run_module
from repro.frontend import compile_c
from repro.pipeline import compile_and_run, paper_variants

GLOBALS = ["ga", "gb", "gc"]
LOCALS = ["x", "y", "z"]
ALL_VARS = GLOBALS + LOCALS


@st.composite
def expressions(draw, depth: int = 0) -> str:
    if depth >= 2:
        return draw(
            st.one_of(
                st.integers(min_value=-20, max_value=20).map(str),
                st.sampled_from(ALL_VARS),
                st.sampled_from(["arr[(%s) & 7]" % v for v in ALL_VARS]),
            )
        )
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        return draw(st.integers(min_value=-20, max_value=20).map(str))
    if kind == 1:
        return draw(st.sampled_from(ALL_VARS))
    left = draw(expressions(depth=depth + 1))   # type: ignore[call-arg]
    right = draw(expressions(depth=depth + 1))  # type: ignore[call-arg]
    if kind == 2:
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        return f"({left} {op} {right})"
    if kind == 3:
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return f"({left} {op} {right})"
    if kind == 4:
        # guarded division/modulo: never divides by zero
        op = draw(st.sampled_from(["/", "%"]))
        return f"({left} {op} (({right} & 7) + 1))"
    return f"helper({left})"


@st.composite
def statements(draw, depth: int = 0) -> str:
    kind = draw(st.integers(min_value=0, max_value=5))
    indent = "    " * (depth + 1)
    if kind <= 1 or depth >= 2:
        var = draw(st.sampled_from(ALL_VARS))
        expr = draw(expressions())  # type: ignore[call-arg]
        op = draw(st.sampled_from(["=", "+=", "-=", "*=", "^="]))
        return f"{indent}{var} {op} {expr};"
    if kind == 2:
        expr = draw(expressions())  # type: ignore[call-arg]
        idx = draw(st.sampled_from(ALL_VARS))
        return f"{indent}arr[({idx}) & 7] = {expr};"
    if kind == 3:
        cond = draw(expressions())  # type: ignore[call-arg]
        then = draw(statements(depth=depth + 1))  # type: ignore[call-arg]
        else_ = draw(statements(depth=depth + 1))  # type: ignore[call-arg]
        return (
            f"{indent}if ({cond}) {{\n{then}\n{indent}}} else "
            f"{{\n{else_}\n{indent}}}"
        )
    if kind == 4:
        body = draw(statements(depth=depth + 1))  # type: ignore[call-arg]
        trips = draw(st.integers(min_value=0, max_value=6))
        return (
            f"{indent}for (k{depth} = 0; k{depth} < {trips}; k{depth}++) "
            f"{{\n{body}\n{indent}}}"
        )
    body = draw(statements(depth=depth + 1))  # type: ignore[call-arg]
    other = draw(statements(depth=depth + 1))  # type: ignore[call-arg]
    return f"{body}\n{other}"


@st.composite
def programs(draw) -> str:
    body = "\n".join(
        draw(statements()) for _ in range(draw(st.integers(1, 4)))  # type: ignore[call-arg]
    )
    return f"""
int ga; int gb; int gc;
int arr[8];

int helper(int v) {{
    return v * 2 - 1;
}}

int main(void) {{
    int x; int y; int z;
    int k0; int k1; int k2;
    x = 1; y = 2; z = 3;
    k0 = 0; k1 = 0; k2 = 0;
{body}
    printf("%d %d %d %d %d %d %d\\n", ga, gb, gc, x, y, z, arr[3]);
    return 0;
}}
"""


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
@pytest.mark.slow
def test_all_variants_agree_on_random_program(source):
    machine = MachineOptions(max_steps=2_000_000)
    baseline = run_module(compile_c(source), options=machine)
    for name, options in paper_variants().items():
        cell = compile_and_run(source, options, machine_options=machine)
        assert cell.output == baseline.output, (
            f"{name} diverged\n--- source ---\n{source}\n"
            f"--- baseline ---\n{baseline.output}\n--- got ---\n{cell.output}"
        )
        assert cell.exit_code == baseline.exit_code


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(programs())
def test_promotion_never_increases_loop_memory_traffic_wildly(source):
    """Sanity bound: promotion may cost a little (pads/exits) but must
    never blow memory traffic up by more than the structural overhead."""
    machine = MachineOptions(max_steps=2_000_000)
    variants = paper_variants()
    base = compile_and_run(source, variants["modref/nopromo"], machine_options=machine)
    promo = compile_and_run(source, variants["modref/promo"], machine_options=machine)
    allowance = 2 * base.counters.memory_ops() + 200
    assert promo.counters.memory_ops() <= allowance

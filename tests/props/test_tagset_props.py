"""Property-based tests for TagSet algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.tags import Tag, TagKind, TagSet

_TAG_POOL = [
    Tag(f"t{i}", TagKind.GLOBAL, is_scalar=(i % 3 != 0)) for i in range(8)
]


def tag_sets() -> st.SearchStrategy[TagSet]:
    finite = st.lists(st.sampled_from(_TAG_POOL), max_size=6).map(
        TagSet.from_iterable
    )
    return st.one_of(finite, st.just(TagSet.universe()))


class TestLatticeLaws:
    @given(tag_sets(), tag_sets())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(tag_sets(), tag_sets(), tag_sets())
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(tag_sets())
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(tag_sets())
    def test_empty_is_identity(self, a):
        assert a.union(TagSet.empty()) == a

    @given(tag_sets())
    def test_universe_absorbs(self, a):
        assert a.union(TagSet.universe()).universal

    @given(tag_sets(), tag_sets())
    def test_intersect_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(tag_sets())
    def test_universe_is_intersect_identity(self, a):
        assert a.intersect(TagSet.universe()) == a

    @given(tag_sets(), tag_sets())
    def test_intersection_subset_of_union(self, a, b):
        inter = a.intersect(b)
        union = a.union(b)
        if not inter.universal and not union.universal:
            assert set(inter) <= set(union)


class TestMembershipConsistency:
    @given(tag_sets(), tag_sets(), st.sampled_from(_TAG_POOL))
    def test_union_membership(self, a, b, tag):
        assert (tag in a.union(b)) == (tag in a or tag in b)

    @given(tag_sets(), tag_sets(), st.sampled_from(_TAG_POOL))
    def test_intersect_membership(self, a, b, tag):
        assert (tag in a.intersect(b)) == (tag in a and tag in b)

    @given(tag_sets(), tag_sets())
    def test_overlaps_iff_common_member(self, a, b):
        if a.universal or b.universal:
            return
        expected = any(t in b for t in a)
        assert a.overlaps(b) == expected

    @given(tag_sets(), tag_sets())
    def test_overlaps_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(tag_sets())
    def test_materialize_is_noop_on_finite(self, a):
        if not a.universal:
            assert a.materialize(_TAG_POOL) == a

    @given(st.lists(st.sampled_from(_TAG_POOL), max_size=6))
    def test_without_removes(self, tags):
        base = TagSet.from_iterable(_TAG_POOL)
        removed = base.without(tags)
        for tag in tags:
            assert tag not in removed

"""The incremental-vs-from-scratch differential: the correctness
contract of `repro.inccomp`, enforced across the whole workload matrix.

For every workload and pipeline configuration: populate a function
store by compiling the pristine source, mutate exactly one function
(dead-local edit — IR-changing but summary-neutral), then recompile
incrementally and from scratch.  The two compiles must be *observably
indistinguishable*: byte-identical printed IR, byte-identical
decision-ledger rows, equal pass-report aggregates — and the
incremental one must have re-optimized only the edited function.
"""

from __future__ import annotations

import pytest

from repro.diag.ledger import decision_ledger
from repro.inccomp import FunctionStore, mutate_function
from repro.ir.printer import format_module
from repro.pipeline import Analysis, PipelineOptions, compile_source
from repro.workloads import get_workload, workload_names

CONFIGS = {
    "full": PipelineOptions(),
    "pointer": PipelineOptions(analysis=Analysis.POINTER, pointer_promotion=True),
}


def _compile_with_ledger(source, options, name, defines, fn_store=None):
    with decision_ledger() as ledger:
        result = compile_source(
            source, options, name=name, defines=defines or None, fn_store=fn_store
        )
    return result, [d.as_dict() for d in ledger.decisions]


@pytest.mark.slow  # full 14x2 matrix; the quick lane keeps the warm and
# ledger tests below plus tests/props for per-edit coverage
@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize("workload_name", workload_names())
def test_incremental_recompile_is_byte_identical(workload_name, config):
    wl = get_workload(workload_name)
    options = CONFIGS[config]
    store = FunctionStore(root=None)

    # populate the store from the pristine source
    _compile_with_ledger(wl.source, options, wl.name, wl.defines, fn_store=store)

    edited_source, edited_fn = mutate_function(wl.source)
    assert edited_source != wl.source

    incremental, inc_ledger = _compile_with_ledger(
        edited_source, options, wl.name, wl.defines, fn_store=store
    )
    scratch, scratch_ledger = _compile_with_ledger(
        edited_source, options, wl.name, wl.defines
    )

    assert format_module(incremental.module) == format_module(scratch.module)
    assert inc_ledger == scratch_ledger

    # only the edited function was re-optimized
    total = len(incremental.module.functions)
    assert incremental.fn_cache_misses == 1, (
        f"edit to {edited_fn} should miss exactly once, got "
        f"{incremental.fn_cache_misses} misses / {incremental.fn_cache_hits} hits"
    )
    assert incremental.fn_cache_hits == total - 1

    # pass-report aggregates replayed from cache match fresh ones
    assert set(incremental.promotion_reports) == set(scratch.promotion_reports)
    for name, report in scratch.promotion_reports.items():
        replayed = incremental.promotion_reports[name]
        assert replayed.promoted_tags == report.promoted_tags
        assert replayed.references_rewritten == report.references_rewritten
    assert {
        name: report.coloring
        for name, report in incremental.regalloc_reports.items()
    } == {
        name: report.coloring for name, report in scratch.regalloc_reports.items()
    }


@pytest.mark.parametrize("workload_name", ["dhrystone", "compress"])
def test_warm_recompile_hits_every_function(workload_name):
    wl = get_workload(workload_name)
    store = FunctionStore(root=None)
    first, _ = _compile_with_ledger(
        wl.source, PipelineOptions(), wl.name, wl.defines, fn_store=store
    )
    warm, _ = _compile_with_ledger(
        wl.source, PipelineOptions(), wl.name, wl.defines, fn_store=store
    )
    assert warm.fn_cache_misses == 0
    assert warm.fn_cache_hits == len(warm.module.functions)
    assert format_module(warm.module) == format_module(first.module)


def test_ledgered_and_plain_compiles_do_not_share_entries():
    """A record made without a ledger has no decisions to replay, so it
    must not satisfy a ledgered compile (and vice versa)."""
    wl = get_workload("dhrystone")
    store = FunctionStore(root=None)
    compile_source(
        wl.source, PipelineOptions(), name=wl.name, fn_store=store
    )  # no ledger
    ledgered, rows = _compile_with_ledger(
        wl.source, PipelineOptions(), wl.name, wl.defines, fn_store=store
    )
    assert ledgered.fn_cache_hits == 0  # separate key namespace
    assert rows  # and the ledger actually saw decisions
    _, replayed_rows = _compile_with_ledger(
        wl.source, PipelineOptions(), wl.name, wl.defines, fn_store=store
    )
    assert replayed_rows == rows

"""Unit tests for the `repro.inccomp` building blocks: the store's
persistence/eviction/corruption behavior, key-digest invariants the
property tests don't reach, the edit helper, and the bench gate."""

from __future__ import annotations

import pickle

import pytest

from repro.frontend import compile_c
from repro.inccomp import (
    EDIT_MARKER,
    FunctionRecord,
    FunctionStore,
    function_digest,
    list_functions,
    module_env_digest,
    mutate_function,
)
from repro.inccomp.bench import (
    bench_compile,
    check_compile_gate,
    format_compile_bench,
)
from repro.ir.printer import format_function

TINY = (
    "int add(int a, int b) {\n    return a + b;\n}\n"
    "int main(void) {\n    return add(1, 2) - 3;\n}\n"
)


def make_record(name: str = "add") -> FunctionRecord:
    module = compile_c(TINY, name="tiny")
    return FunctionRecord(function=module.functions[name], seconds=0.01)


# ---------------------------------------------------------------------------
# FunctionStore
# ---------------------------------------------------------------------------

class TestFunctionStore:
    def test_memory_only_roundtrip_hands_out_fresh_objects(self):
        store = FunctionStore(root=None)
        store.put("k1", make_record())
        first = store.get("k1")
        second = store.get("k1")
        assert first is not None and second is not None
        assert first is not second
        assert first.function is not second.function
        assert format_function(first.function) == format_function(second.function)
        assert (store.hits, store.misses) == (2, 0)

    def test_miss_counts(self):
        store = FunctionStore(root=None)
        assert store.get("absent") is None
        assert (store.hits, store.misses) == (0, 1)

    def test_disk_roundtrip_survives_new_store_instance(self, tmp_path):
        FunctionStore(root=tmp_path).put("aa11", make_record())
        fresh = FunctionStore(root=tmp_path)
        record = fresh.get("aa11")
        assert record is not None
        assert fresh.path_for("aa11").exists()
        assert fresh.path_for("aa11").parent.name == "aa"

    def test_memory_only_store_has_no_paths(self):
        with pytest.raises(ValueError):
            FunctionStore(root=None).path_for("deadbeef")

    def test_fifo_eviction_bounds_memory_layer(self):
        store = FunctionStore(root=None, max_entries=2)
        record = make_record()
        store.put("k1", record)
        store.put("k2", record)
        store.put("k3", record)  # evicts k1
        assert len(store) == 2
        assert store.get("k1") is None
        assert store.get("k2") is not None
        assert store.get("k3") is not None

    def test_corrupt_disk_entry_is_dropped_and_misses(self, tmp_path):
        store = FunctionStore(root=tmp_path)
        store.put("cc22", make_record())
        path = store.path_for("cc22")
        path.write_bytes(b"not a pickle")
        fresh = FunctionStore(root=tmp_path)
        assert fresh.get("cc22") is None
        assert fresh.misses == 1
        assert not path.exists()  # corrupt entry unlinked

    def test_wrong_payload_type_is_a_miss(self):
        store = FunctionStore(root=None)
        store._memory["k1"] = pickle.dumps({"not": "a record"})
        assert store.get("k1") is None
        assert store.misses == 1

    def test_clear_removes_memory_and_disk(self, tmp_path):
        store = FunctionStore(root=tmp_path)
        store.put("aa11", make_record())
        store.put("bb22", make_record())
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get("aa11") is None

    def test_clear_on_empty_roots(self, tmp_path):
        assert FunctionStore(root=None).clear() == 0
        assert FunctionStore(root=tmp_path / "never-made").clear() == 0
        assert len(FunctionStore(root=tmp_path / "never-made")) == 0

    def test_pickling_a_store_drops_the_memory_layer(self):
        store = FunctionStore(root=None, max_entries=7)
        store.put("k1", make_record())
        clone = pickle.loads(pickle.dumps(store))
        assert clone._memory == {}
        assert clone.max_entries == 7
        assert clone.root is None


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------

class TestKeys:
    def test_function_digest_is_deterministic_across_compiles(self):
        a = compile_c(TINY, name="one").functions["add"]
        b = compile_c(TINY, name="two").functions["add"]
        assert function_digest(a) == function_digest(b)

    def test_module_env_digest_ignores_module_name(self):
        a = module_env_digest(compile_c(TINY, name="one"))
        b = module_env_digest(compile_c(TINY, name="two"))
        assert a == b

    def test_module_env_digest_sees_global_initializers(self):
        a = module_env_digest(compile_c("int g = 1;" + TINY, name="m"))
        b = module_env_digest(compile_c("int g = 2;" + TINY, name="m"))
        assert a != b


# ---------------------------------------------------------------------------
# edits
# ---------------------------------------------------------------------------

class TestEdits:
    def test_list_functions_in_order(self):
        assert list_functions(TINY) == ["add", "main"]

    def test_default_edit_picks_first_non_main(self):
        edited, name = mutate_function(TINY)
        assert name == "add"
        assert EDIT_MARKER in edited
        assert edited.count(EDIT_MARKER) == 1
        # everything else untouched
        assert edited.replace(f"    {EDIT_MARKER}\n", "") == TINY

    def test_named_edit(self):
        edited, name = mutate_function(TINY, "main")
        assert name == "main"
        assert edited.index(EDIT_MARKER) > edited.index("main")

    def test_unknown_function_raises(self):
        with pytest.raises(ValueError, match="no function named"):
            mutate_function(TINY, "absent")

    def test_sourceless_input_raises(self):
        with pytest.raises(ValueError, match="no function definitions"):
            mutate_function("int x;\n")

    def test_edited_program_still_compiles_identically_elsewhere(self):
        edited, _ = mutate_function(TINY, "add")
        module = compile_c(edited, name="tiny")
        assert set(module.functions) == {"add", "main"}


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------

class TestBench:
    def test_small_bench_run(self):
        payload = bench_compile(names=["dhrystone"])
        assert payload["schema"] == 1
        assert [p["name"] for p in payload["programs"]] == ["dhrystone"]
        row = payload["programs"][0]
        assert row["identical"] is True
        assert row["incremental_misses"] == 1
        assert row["incremental_hits"] == row["functions"] - 1
        assert payload["all_identical"] is True
        assert payload["speedup"]["incremental"] > 0
        table = format_compile_bench(payload)
        assert "dhrystone" in table and "speedup vs scratch" in table

    def test_gate_passes_on_good_payload(self):
        payload = {
            "programs": [{"name": "x", "identical": True}],
            "all_identical": True,
            "speedup": {"incremental": 2.5},
        }
        assert check_compile_gate(payload) == []

    def test_gate_flags_slow_and_divergent(self):
        payload = {
            "programs": [{"name": "x", "identical": False}],
            "all_identical": False,
            "speedup": {"incremental": 1.2},
        }
        problems = check_compile_gate(payload, min_speedup=2.0)
        assert len(problems) == 2
        assert any("differs" in p for p in problems)
        assert any("below" in p for p in problems)

"""Trace analysis: grouping, structure checks, attribution, reporting."""

from repro.trace import (
    SpanEvent,
    attribution,
    critical_path,
    group_traces,
    load_spans,
    orphan_spans,
    trace_coverage,
    trace_root,
    write_spans_jsonl,
)
from repro.trace.report import (
    aggregate_spans,
    filter_traces,
    format_critical_path,
    format_slow,
    format_top,
    format_trace_list,
    format_trace_tree,
    trace_program,
)


def _span(name, start, seconds, *, tid="t1", sid=None, parent=None,
          worker="serve", **args):
    return SpanEvent(
        name=name, start=start, seconds=seconds, depth=0,
        self_seconds=seconds, args=args, trace_id=tid, span_id=sid,
        parent_id=parent, worker=worker, wall_start=1000.0 + start,
    )


def _request_trace(tid="t1", *, queue=0.1, compile_s=0.3, execute=0.5,
                   program="tsp"):
    """A synthetic but structurally faithful serve trace."""
    total = 0.05 + queue + compile_s + execute + 0.05
    return [
        _span("request", 0.0, total, tid=tid, sid="a-1", op="run"),
        _span("build_job", 0.01, 0.04, tid=tid, sid="a-2", parent="a-1",
              program=program),
        _span("cache_lookup", 0.05, 0.005, tid=tid, sid="a-3", parent="a-1",
              hit=False),
        _span("queue_wait", 0.055, queue, tid=tid, sid="a-4", parent="a-1"),
        _span("dispatch", 0.055 + queue, compile_s + execute + 0.05,
              tid=tid, sid="a-5", parent="a-1"),
        _span("compile", 0.06 + queue, compile_s, tid=tid, sid="b-1",
              parent="a-5", worker="w0"),
        _span("promotion", 0.1 + queue, 0.05, tid=tid, sid="b-2",
              parent="b-1", worker="w0"),
        _span("execute", 0.06 + queue + compile_s, execute, tid=tid,
              sid="b-3", parent="a-5", worker="w0"),
        _span("interp.run", 0.07 + queue + compile_s, execute - 0.01,
              tid=tid, sid="b-4", parent="b-3", worker="w0"),
    ]


class TestStructure:
    def test_group_traces_skips_anonymous(self):
        events = _request_trace() + [
            SpanEvent("legacy", 0.0, 1.0, 0, 1.0, {})
        ]
        groups = group_traces(events)
        assert set(groups) == {"t1"}
        assert len(groups["t1"]) == 9

    def test_root_and_orphans(self):
        events = _request_trace()
        assert trace_root(events).name == "request"
        assert orphan_spans(events) == []
        stray = _span("lost", 0.0, 0.1, sid="z-9", parent="missing")
        assert orphan_spans(events + [stray]) == [stray]

    def test_coverage_counts_direct_children_only(self):
        events = _request_trace(queue=0.2, compile_s=0.3, execute=0.4)
        cover = trace_coverage(events)
        assert 0.9 <= cover <= 1.0
        # drop the dispatch span: the worker time becomes a gap
        gappy = [e for e in events if e.name != "dispatch"]
        assert trace_coverage(gappy) < 0.5


class TestAttribution:
    def test_buckets_sum_to_total(self):
        events = _request_trace(queue=0.2, compile_s=0.3, execute=0.4)
        att = attribution(events)
        assert abs(att["queue"] - 0.2) < 1e-9
        assert abs(att["compile"] - 0.3) < 1e-9
        assert abs(att["execute"] - 0.4) < 1e-9
        parts = sum(
            att[k] for k in
            ("queue", "cache", "coalesce", "compile", "execute", "other")
        )
        assert abs(parts - att["total"]) < 1e-9

    def test_nested_same_bucket_spans_count_once(self):
        """interp.run inside execute must not double the execute bucket;
        promotion inside compile must not double compile."""
        events = _request_trace(compile_s=0.3, execute=0.5)
        att = attribution(events)
        assert att["execute"] == 0.5
        assert att["compile"] == 0.3

    def test_critical_path_descends_heaviest_chain(self):
        events = _request_trace(queue=0.05, compile_s=0.2, execute=0.9)
        names = [e.name for e in critical_path(events)]
        assert names == ["request", "dispatch", "execute", "interp.run"]


class TestJsonlRoundTrip:
    def test_write_and_load(self, tmp_path):
        events = _request_trace()
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(path, events) == len(events)
        assert load_spans(path) == events

    def test_append_mode_accumulates(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(path, _request_trace("t1"))
        write_spans_jsonl(path, _request_trace("t2"), append=True)
        assert set(group_traces(load_spans(path))) == {"t1", "t2"}


class TestReport:
    def _groups(self):
        return group_traces(
            _request_trace("t1", program="tsp")
            + _request_trace("t2", execute=2.0, program="fft")
        )

    def test_filter_by_program_op_and_id_prefix(self):
        groups = self._groups()
        assert set(filter_traces(groups, program="fft")) == {"t2"}
        assert set(filter_traces(groups, op="run")) == {"t1", "t2"}
        assert set(filter_traces(groups, trace_id="t")) == {"t1", "t2"}
        assert filter_traces(groups, program="nope") == {}

    def test_trace_program_reads_build_job_args(self):
        assert trace_program(_request_trace(program="mlink")) == "mlink"

    def test_aggregate_and_top(self):
        groups = self._groups()
        rows = aggregate_spans(groups)
        by_name = {row["name"]: row for row in rows}
        assert by_name["request"]["calls"] == 2
        assert rows[0]["name"] == "request"  # heaviest first
        text = format_top(groups, limit=3)
        assert "request" in text and "calls" in text

    def test_slow_ranks_by_duration_and_shows_stages(self):
        text = format_slow(self._groups(), limit=2)
        lines = text.splitlines()
        assert lines[2].startswith("t2")  # the slower trace leads
        assert "queue" in lines[0] and "cover" in lines[0]

    def test_tree_renders_every_span_and_flags_unreachable(self):
        events = _request_trace()
        text = format_trace_tree(events)
        for event in events:
            assert event.name in text
        assert "unreachable" not in text
        broken = events + [_span("lost", 0, 0.1, sid="z-1", parent="gone")]
        assert "unreachable" in format_trace_tree(broken)

    def test_critical_path_formatting(self):
        text = format_critical_path(_request_trace())
        assert text.splitlines()[0].startswith("trace t1")
        assert "%" in text

    def test_trace_list(self):
        text = format_trace_list(self._groups(), limit=1)
        assert "more (raise -n)" in text

"""The flight recorder: bounded ring, no-allocation writes, crash bundles."""

import json
import logging

from repro.trace import (
    FlightRecorder,
    Trace,
    TraceContext,
    flight_recorder,
    install_flight_recorder,
    new_trace_id,
    uninstall_flight_recorder,
)


class TestRing:
    def test_fifo_overwrite_and_occupancy(self):
        recorder = FlightRecorder(capacity=4)
        for n in range(6):
            recorder.record_event(f"span-{n}")
        assert recorder.occupancy == 4
        assert recorder.dropped == 2
        names = [slot["name"] for slot in recorder.snapshot()]
        assert names == ["span-2", "span-3", "span-4", "span-5"]

    def test_slots_are_reused_not_reallocated(self):
        """The hot path writes into preallocated slot dicts in place."""
        recorder = FlightRecorder(capacity=2)
        recorder.record_event("a")
        first = recorder._slots[0]
        recorder.record_event("b")
        recorder.record_event("c")  # wraps onto slot 0
        assert recorder._slots[0] is first
        assert first["name"] == "c"

    def test_record_trace_pushes_every_span(self):
        recorder = FlightRecorder(capacity=16)
        trace = Trace("req", context=TraceContext(new_trace_id()))
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        recorder.record_trace(trace)
        names = {slot["name"] for slot in recorder.snapshot()}
        assert {"outer", "inner"} <= names
        assert all(
            slot["trace_id"] == trace.context.trace_id
            for slot in recorder.snapshot()
        )


class TestDump:
    def test_bundle_contains_meta_spans_and_logs(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        recorder.record_event("request.run", ok=True)
        handler = recorder.log_handler
        logger = logging.getLogger("repro.test-flight")
        logger.addHandler(handler)
        logger.setLevel(logging.WARNING)
        try:
            logger.warning("something notable happened")
        finally:
            logger.removeHandler(handler)

        bundle = recorder.dump(
            tmp_path, "worker_crashed", meta={"request_id": "r1"}
        )
        assert bundle.name.startswith("flight-")
        assert "worker_crashed" in bundle.name
        meta = json.loads((bundle / "meta.json").read_text())
        assert meta["reason"] == "worker_crashed"
        assert meta["request_id"] == "r1"
        spans = [
            json.loads(line)
            for line in (bundle / "spans.jsonl").read_text().splitlines()
        ]
        assert any(s["name"] == "request.run" for s in spans)
        assert "something notable" in (bundle / "logs.txt").read_text()

    def test_dump_counter_yields_distinct_bundles(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.record_event("x")
        a = recorder.dump(tmp_path, "crash")
        b = recorder.dump(tmp_path, "crash")
        assert a != b
        assert recorder.dumps == 2

    def test_extra_spans_ride_along(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        trace = Trace("req", context=TraceContext(new_trace_id()))
        with trace.span("doomed"):
            pass
        bundle = recorder.dump(tmp_path, "deadline", extra_spans=trace.events)
        spans = (bundle / "spans.jsonl").read_text()
        assert "doomed" in spans


class TestGlobalInstall:
    def test_install_and_uninstall(self):
        assert flight_recorder() is None
        recorder = install_flight_recorder(FlightRecorder(capacity=4))
        try:
            assert flight_recorder() is recorder
            # log records from the repro tree land in the ring
            logging.getLogger("repro.flight-test").error("boom")
            assert any(
                "boom" in line for line in recorder.log_handler.snapshot()
            )
        finally:
            uninstall_flight_recorder()
        assert flight_recorder() is None

    def test_reinstall_replaces(self):
        first = install_flight_recorder(FlightRecorder(capacity=4))
        second = install_flight_recorder(FlightRecorder(capacity=4))
        try:
            assert flight_recorder() is second is not first
            handlers = logging.getLogger("repro").handlers
            assert first.log_handler not in handlers
        finally:
            uninstall_flight_recorder()

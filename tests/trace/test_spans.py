"""The span model: identity, nesting, propagation, adoption, sampling."""

import pickle

from repro.trace import (
    HeadSampler,
    SpanEvent,
    Trace,
    TraceContext,
    current_trace,
    new_trace_id,
    propagation_context,
    span,
    tracing,
)


class TestIdentity:
    def test_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)

    def test_span_ids_unique_across_traces_in_one_process(self):
        """Two concurrent traces must never mint the same span id — the
        counter is module-global, not per-Trace."""
        a = Trace("a", context=TraceContext(new_trace_id()))
        b = Trace("b", context=TraceContext(new_trace_id()))
        ids = {a.new_span_id(), b.new_span_id(), a.new_span_id()}
        assert len(ids) == 3

    def test_anonymous_trace_events_omit_identity_keys(self):
        """No-context traces keep the original telemetry dict shape, so
        ``repro suite --trace`` output is unchanged."""
        trace = Trace("legacy")
        with trace.span("work"):
            pass
        data = trace.events[0].as_dict()
        for key in ("trace_id", "span_id", "parent_id", "worker",
                    "wall_start"):
            assert key not in data
        assert data["name"] == "work"

    def test_identified_trace_events_carry_identity(self):
        ctx = TraceContext(new_trace_id(), parent_id="parent-1")
        trace = Trace("req", context=ctx, worker="serve")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        outer = next(e for e in trace.events if e.name == "outer")
        inner = next(e for e in trace.events if e.name == "inner")
        assert outer.trace_id == inner.trace_id == ctx.trace_id
        assert outer.parent_id == "parent-1"  # roots under the context
        assert inner.parent_id == outer.span_id
        assert outer.worker == inner.worker == "serve"
        assert outer.wall_start is not None

    def test_event_dict_round_trip(self):
        ctx = TraceContext(new_trace_id())
        trace = Trace("t", context=ctx, worker="w0")
        with trace.span("work", answer=42):
            pass
        event = trace.events[0]
        assert SpanEvent.from_dict(event.as_dict()) == event


class TestContextPropagation:
    def test_context_dict_round_trip(self):
        ctx = TraceContext(new_trace_id(), parent_id="abc-1", sampled=True)
        assert TraceContext.from_dict(ctx.as_dict()) == ctx

    def test_context_survives_pickling(self):
        """The pool ships contexts over a multiprocessing pipe."""
        ctx = TraceContext(new_trace_id(), parent_id="abc-1")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_propagation_context_points_at_innermost_open_span(self):
        with tracing("req", context=TraceContext(new_trace_id())) as trace:
            with trace.span("outer"):
                ctx = propagation_context()
                assert ctx is not None
                assert ctx.trace_id == trace.context.trace_id
                assert ctx.parent_id == trace._open_ids[-1]
        assert propagation_context() is None

    def test_tracing_installs_and_restores_current(self):
        assert current_trace() is None
        with tracing("outer") as outer:
            assert current_trace() is outer
            with tracing("inner") as inner:
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None


class TestSpans:
    def test_module_level_span_is_noop_without_a_trace(self):
        with span("orphan") as extra:
            assert extra is None

    def test_exit_args_merge_into_the_event(self):
        trace = Trace("t", context=TraceContext(new_trace_id()))
        with trace.span("cache_lookup") as extra:
            extra["hit"] = True
        assert trace.events[0].args["hit"] is True

    def test_self_time_excludes_children(self):
        trace = Trace("t")
        with trace.span("parent"):
            with trace.span("child"):
                pass
        parent = next(e for e in trace.events if e.name == "parent")
        child = next(e for e in trace.events if e.name == "child")
        assert parent.self_seconds <= parent.seconds - child.seconds + 1e-6

    def test_add_event_records_retroactive_span(self):
        """Queue wait is measured at dequeue, after the fact."""
        import time

        ctx = TraceContext(new_trace_id())
        trace = Trace("req", context=ctx)
        t0 = time.perf_counter()
        minted = trace.new_span_id()
        event = trace.add_event(
            "queue_wait", start_perf=t0, seconds=0.25, span_id=minted,
            priority="normal",
        )
        assert event.seconds == 0.25
        assert event.span_id == minted
        assert event.parent_id is None  # no open span, no context parent
        assert event.args["priority"] == "normal"


class TestAdoption:
    def test_adopt_rebases_onto_wall_clock(self):
        """Worker spans merge into the server trace on the same timeline."""
        ctx = TraceContext(new_trace_id())
        parent = Trace("req", context=ctx, worker="serve")
        dispatch_id = parent.new_span_id()
        child = Trace(
            "cell",
            context=TraceContext(ctx.trace_id, parent_id=dispatch_id),
            worker="w0",
        )
        with child.span("compile"):
            pass
        shipped = [e.as_dict() for e in child.events]

        adopted = parent.adopt(shipped)
        assert len(adopted) == 1
        event = adopted[0]
        assert event.trace_id == ctx.trace_id
        assert event.parent_id == dispatch_id
        assert event.worker == "w0"
        # rebased start: the child began after the parent trace's epoch
        assert event.start >= 0.0
        assert event in parent.events


class TestHeadSampler:
    def test_rate_zero_never_samples(self):
        sampler = HeadSampler(0.0)
        assert not any(sampler.sample() for _ in range(200))

    def test_rate_one_always_samples(self):
        sampler = HeadSampler(1.0)
        assert all(sampler.sample() for _ in range(200))

    def test_fractional_rate_is_roughly_proportional(self):
        sampler = HeadSampler(0.25, seed=7)
        hits = sum(sampler.sample() for _ in range(2000))
        assert 350 < hits < 650

"""Tracing-off overhead guards.

The contract is that with no trace installed, the hot paths are the
*original* code paths — not "instrumentation that happens to be cheap".
These are structural checks (like the profiler's dispatch-loop guard in
``tests/diag/test_profile.py``): they pin the shape of the code rather
than assert on noisy wall-clock ratios.  The ≤2% ``repro bench --quick``
budget from the issue is enforced operationally (see CHANGES.md) — a
timing assertion here would flake on loaded CI machines.
"""

import inspect

from repro.trace import current_trace, span
from repro.trace.spans import Trace


class TestGlobalSpanIsFreeWhenOff:
    def test_span_yields_immediately_without_a_trace(self):
        assert current_trace() is None
        with span("anything", module=None, irrelevant=1) as extra:
            assert extra is None

    def test_span_source_checks_current_before_any_work(self):
        """The no-trace exit must come before argument processing."""
        source = inspect.getsource(span)
        body = source.split('"""', 2)[2]  # after the docstring
        # the None check must come before the real span machinery runs
        assert body.index("is None") < body.index(".span(")


class TestEngineHotPathUntraced:
    def test_exec_entry_keeps_the_original_untraced_path(self):
        from repro.interp.engine import exec_entry

        source = inspect.getsource(exec_entry)
        untraced = source.split("if trace is None:", 1)[1]
        untraced = untraced.split("cached =", 1)[0]
        # the trace-off branch calls straight into exec_function with no
        # span machinery
        assert "span" not in untraced
        assert "exec_function" in untraced

    def test_exec_function_dispatch_loop_has_no_tracing(self):
        """The per-block dispatch loop must never consult the trace."""
        from repro.interp.engine import exec_function

        source = inspect.getsource(exec_function)
        assert "trace" not in source
        assert "span" not in source


class TestPipelineSpansAreAnonymousCompatible:
    def test_pass_span_without_trace_is_noop(self):
        from repro.pipeline import _pass_span

        assert current_trace() is None
        with _pass_span("promotion") as extra:
            assert extra is None

    def test_trace_events_list_not_populated_when_off(self):
        from repro.pipeline import compile_source

        assert current_trace() is None
        compile_source("int main(void) { return 0; }")
        assert current_trace() is None


class TestPoolJobPathUntraced:
    def test_handle_job_skips_tracing_without_context(self):
        from repro.serve.pool import _maybe_tracing

        with _maybe_tracing("compile", None, "w0") as trace:
            assert trace is None

    def test_execute_cell_without_context_collects_nothing(self):
        from repro.interp import MachineOptions
        from repro.pipeline import PipelineOptions
        from repro.runner.scheduler import CellSpec, execute_cell

        spec = CellSpec(
            workload="t",
            variant="modref/promo",
            source="int main(void) { return 0; }",
            options=PipelineOptions(),
            machine=MachineOptions(),
        )
        cell = execute_cell(spec)
        assert cell.trace_events == []


class TestSpanEventSlots:
    def test_trace_span_overhead_is_bounded_allocation(self):
        """A traced span allocates one SpanEvent and no per-span dicts
        beyond args — guard the shape by counting events."""
        trace = Trace("t")
        for _ in range(100):
            with trace.span("x"):
                pass
        assert len(trace.events) == 100

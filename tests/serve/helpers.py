"""Shared fixtures for the serve tests: specs, jobs, and async runners."""

from __future__ import annotations

import asyncio

from repro.interp import MachineOptions
from repro.pipeline import PipelineOptions
from repro.runner.scheduler import CellSpec

FAST_SOURCE = """
int g;
int main() {
    int i;
    for (i = 0; i < 100; i++) g += i;
    return 0;
}
"""

#: ~1-2s of interpretation under the threaded engine — long enough to
#: observe "busy", kill mid-request, or fire a deadline, short enough
#: that a retry still finishes inside the test budget
SLOW_TEMPLATE = """
long g;
int main() {
    long i;
    for (i = 0; i < %d; i++) g += i;
    return 0;
}
"""


def slow_source(iterations: int = 400000, salt: int = 0) -> str:
    """A distinct (un-coalescable, un-cached) slow program per salt."""
    source = SLOW_TEMPLATE % iterations
    if salt:
        source += f"/* salt {salt} */\n"
    return source


def make_spec(
    source: str = FAST_SOURCE,
    name: str = "test",
    max_steps: int = 50_000_000,
) -> CellSpec:
    options = PipelineOptions()
    return CellSpec(
        workload=name,
        variant=options.variant_name(),
        source=source,
        options=options,
        machine=MachineOptions(max_steps=max_steps),
    )


def make_cell_job(
    source: str = FAST_SOURCE,
    name: str = "test",
    max_steps: int = 50_000_000,
) -> dict:
    return {"kind": "cell", "spec": make_spec(source, name, max_steps)}


def run_async(coroutine):
    """The tests run plain pytest (no asyncio plugin)."""
    return asyncio.run(coroutine)

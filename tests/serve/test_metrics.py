"""Latency histograms and the ServeMetrics façade."""

from repro.diag.metrics import MetricsRegistry
from repro.serve.metrics import BUCKET_BOUNDS, LatencyHistogram, ServeMetrics


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p99_ms"] == 0.0

    def test_single_observation(self):
        histogram = LatencyHistogram()
        histogram.observe(0.003)
        assert histogram.count == 1
        assert histogram.max == 0.003
        # lands in the (0.0025, 0.005] bucket; quantiles stay inside it
        for q in (0.5, 0.95, 0.99):
            assert 0.0 < histogram.quantile(q) <= 0.005

    def test_quantiles_ordered_and_capped_by_max(self):
        histogram = LatencyHistogram()
        for index in range(1000):
            histogram.observe(0.0001 * (index + 1))  # 0.1ms .. 100ms
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        p99 = histogram.quantile(0.99)
        assert p50 <= p95 <= p99 <= histogram.max
        # the true p50 is 50ms; bucket interpolation is coarse but sane
        assert 0.025 <= p50 <= 0.1
        assert p99 >= 0.05

    def test_overflow_bucket(self):
        histogram = LatencyHistogram()
        histogram.observe(99.0)  # beyond the last bound
        assert histogram.counts[len(BUCKET_BOUNDS)] == 1
        assert histogram.quantile(0.99) <= histogram.max == 99.0

    def test_mean_in_snapshot(self):
        histogram = LatencyHistogram()
        histogram.observe(0.010)
        histogram.observe(0.030)
        assert abs(histogram.snapshot()["mean_ms"] - 20.0) < 0.001


class TestServeMetrics:
    def test_requests_feed_registry_and_histograms(self):
        metrics = ServeMetrics()
        metrics.observe_request("run", 0.01, ok=True)
        metrics.observe_request("run", 0.02, ok=False)
        metrics.observe_request("health", 0.001, ok=True)
        values = metrics.registry.as_dict()
        assert values["serve.requests"] == 3
        assert values["serve.requests.run"] == 2
        assert values["serve.requests.health"] == 1
        assert values["serve.errors"] == 1
        assert metrics.latency["run"].count == 2

    def test_error_codes_counted(self):
        metrics = ServeMetrics()
        metrics.observe_error("queue_full")
        metrics.observe_error("queue_full")
        assert metrics.registry.get("serve.errors.queue_full") == 2

    def test_snapshot_shape(self):
        metrics = ServeMetrics()
        metrics.observe_request("suite_cell", 0.005, ok=True)
        metrics.observe_queue_wait(0.001)
        metrics.set_gauge("serve.queue_depth", 3)
        snapshot = metrics.snapshot()
        assert snapshot["uptime_s"] >= 0
        assert snapshot["metrics"]["serve.queue_depth"] == 3
        assert set(snapshot["latency"]) == {"suite_cell"}
        assert snapshot["queue_wait"]["count"] == 1

    def test_shares_diag_registry_type(self):
        """Serving metrics speak the same registry the drift gate reads."""
        registry = MetricsRegistry()
        metrics = ServeMetrics(registry=registry)
        metrics.inc("serve.cache_hits")
        assert registry.get("serve.cache_hits") == 1

"""The chaos layer: plan determinism, enactment helpers, server
integration, and the soak harness's invariant contract.

The plan tests are pure (no processes).  The integration and soak tests
spawn a real server with faults enabled at rate 1.0 for one site at a
time — deterministic by construction, not by rate.
"""

import json

import pytest

from repro.chaos.inject import CHAOS_EXIT_CODE, mangle_response
from repro.chaos.plan import (
    CRASH_SITES,
    SITES,
    FaultPlan,
    FaultSpec,
    request_token,
)
from tests.serve.helpers import run_async


class TestFaultPlan:
    def test_sites_registry_is_closed_and_layered(self):
        assert len(SITES) == len(set(SITES))
        layers = {site.split(".")[0] for site in SITES}
        assert layers == {"pool", "server", "protocol", "cache"}
        assert CRASH_SITES < set(SITES)

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos site"):
            FaultPlan(0, {"pool.meltdown": 0.5})

    def test_parse_spec_round_trip(self):
        plan = FaultPlan.parse(
            "seed=7,rate=0.1,pool.crash_during=0.9,limit=3"
        )
        assert plan.seed == 7
        assert plan.rates["pool.crash_during"] == 0.9
        assert plan.rates["cache.evict"] == 0.1
        assert FaultPlan.parse(plan.spec()).spec() == plan.spec()

    def test_parse_rejects_garbage(self):
        for bad in ("seed=x", "rate=2.0", "bogus.site=1.0", "limit=-1"):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)

    def test_same_seed_same_decisions(self):
        a = FaultPlan.all_sites(seed=42, rate=0.3)
        b = FaultPlan.all_sites(seed=42, rate=0.3)
        decisions_a = [
            a.would_inject(site, f"t{i}", 0)
            for site in SITES for i in range(50)
        ]
        decisions_b = [
            b.would_inject(site, f"t{i}", 0)
            for site in SITES for i in range(50)
        ]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_differ(self):
        a = FaultPlan.all_sites(seed=1, rate=0.3)
        b = FaultPlan.all_sites(seed=2, rate=0.3)
        assert [
            a.would_inject("pool.hang", f"t{i}", 0) for i in range(100)
        ] != [
            b.would_inject("pool.hang", f"t{i}", 0) for i in range(100)
        ]

    def test_rate_extremes(self):
        always = FaultPlan(0, {"pool.hang": 1.0})
        never = FaultPlan(0, {"pool.hang": 0.0})
        for i in range(20):
            assert always.would_inject("pool.hang", f"t{i}", 0)
            assert not never.would_inject("pool.hang", f"t{i}", 0)

    def test_decide_advances_occurrence_so_retries_get_fresh_fate(self):
        plan = FaultPlan(0, {"pool.crash_during": 1.0})
        first = plan.decide("pool.crash_during", "tok")
        second = plan.decide("pool.crash_during", "tok")
        assert first.occurrence == 0
        assert second.occurrence == 1
        assert plan.consults == 2

    def test_limit_caps_injections_per_site(self):
        plan = FaultPlan(
            0, {"pool.crash_during": 1.0}, max_injections_per_site=2
        )
        hits = [
            plan.decide("pool.crash_during", f"t{i}") for i in range(10)
        ]
        assert sum(1 for h in hits if h is not None) == 2
        assert plan.injected_by_site() == {"pool.crash_during": 2}

    def test_schedule_digest_stable_across_instances(self):
        tokens = [f"req-{i}" for i in range(20)]
        a = FaultPlan.all_sites(seed=9, rate=0.2).schedule(tokens, 2)
        b = FaultPlan.all_sites(seed=9, rate=0.2).schedule(tokens, 2)
        assert a == b
        assert FaultPlan.schedule_digest(a) == FaultPlan.schedule_digest(b)
        c = FaultPlan.all_sites(seed=10, rate=0.2).schedule(tokens, 2)
        assert FaultPlan.schedule_digest(a) != FaultPlan.schedule_digest(c)

    def test_delay_is_seeded_and_bounded(self):
        plan = FaultPlan(3, {"server.dispatch_delay": 1.0})
        fault = plan.decide("server.dispatch_delay", "tok")
        again = FaultPlan(3, {"server.dispatch_delay": 1.0}).decide(
            "server.dispatch_delay", "tok"
        )
        assert fault.delay_ms == again.delay_ms
        assert 1 <= fault.delay_ms <= plan.delay_max_ms

    def test_describe_reports_injections(self):
        plan = FaultPlan(0, {"cache.evict": 1.0})
        plan.decide("cache.evict", "tok")
        described = plan.describe()
        assert described["injected"] == 1
        assert described["injected_by_site"] == {"cache.evict": 1}
        assert described["seed"] == 0
        json.dumps(described)  # wire-safe


class TestRequestToken:
    def test_stable_and_param_order_independent(self):
        a = request_token("run", {"x": 1, "y": 2})
        b = request_token("run", {"y": 2, "x": 1})
        assert a == b
        assert len(a) == 16

    def test_distinguishes_op_and_params(self):
        base = request_token("run", {"x": 1})
        assert request_token("compile", {"x": 1}) != base
        assert request_token("run", {"x": 2}) != base


class TestMangleResponse:
    FRAME = (json.dumps({"id": 7, "ok": True, "result": {"v": 1}}) + "\n").encode()

    def test_truncate_sends_half_and_hangs_up(self):
        chunks, hangup = mangle_response("protocol.truncate", self.FRAME)
        assert hangup
        assert len(chunks) == 1
        assert len(chunks[0]) == len(self.FRAME) // 2
        assert self.FRAME.startswith(chunks[0])

    def test_hangup_sends_nothing(self):
        chunks, hangup = mangle_response("protocol.hangup", self.FRAME)
        assert chunks == [] and hangup

    def test_split_reassembles_to_the_original(self):
        chunks, hangup = mangle_response("protocol.split", self.FRAME)
        assert not hangup
        assert len(chunks) == 2
        assert b"".join(chunks) == self.FRAME

    def test_oversize_is_valid_json_but_huge(self):
        chunks, _ = mangle_response("protocol.oversize", self.FRAME)
        blob = b"".join(chunks)
        assert len(blob) > 100_000
        assert blob.endswith(b"\n")
        frame = json.loads(blob)
        assert frame["id"] == 7  # payload intact, just padded

    def test_worker_payload_round_trip(self):
        spec = FaultSpec(site="pool.hang", token="t", occurrence=1, delay_ms=9)
        payload = spec.worker_payload()
        assert payload == {"site": "pool.hang", "delay_ms": 9}
        json.dumps(payload)  # crosses the job pipe


class TestServerIntegration:
    def test_injected_crash_is_retried_dumped_and_counted(self, tmp_path):
        """One forced crash_during: the pool absorbs it, the flight
        recorder keeps the evidence, the metrics name the site."""

        async def scenario():
            from repro.serve.client import ServeClient
            from repro.serve.server import ReproServer, ServerConfig

            server = ReproServer(ServerConfig(
                port=0, workers=1,
                cache_dir=str(tmp_path / "cache"),
                artifacts_dir=str(tmp_path / "artifacts"),
                chaos_plan="seed=0,pool.crash_during=1.0,limit=1",
            ))
            await server.start()
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                try:
                    result = await client.call(
                        "suite_cell",
                        {"workload": "dhrystone", "variant": "modref/promo",
                         "max_steps": 2_000_000},
                        idempotency_key="crash-me",
                    )
                    assert result["workload"] == "dhrystone"
                    metrics = await client.call("metrics")
                    assert metrics["chaos"]["injected_by_site"] == {
                        "pool.crash_during": 1
                    }
                    values = metrics["metrics"]
                    assert values["chaos.injected.pool.crash_during"] == 1
                    assert values["serve.worker_restarts.crash"] == 1
                finally:
                    await client.close()
            finally:
                await server.stop()
            bundles = list((tmp_path / "artifacts").glob("flight-*"))
            assert len(bundles) == 1
            assert "worker_crash-" in bundles[0].name

        run_async(scenario())

    def test_crash_exit_code_is_distinctive(self):
        assert CHAOS_EXIT_CODE == 86

    def test_wire_fault_recovery_via_resilient_client(self, tmp_path):
        """A forced truncate tears the connection; the resilient client
        reconnects and the retry must see a clean server — including the
        regression where a forked worker's inherited socket fd kept the
        torn connection from ever reaching EOF."""

        async def scenario():
            from repro.serve.client import ResilientClient
            from repro.serve.server import ReproServer, ServerConfig

            server = ReproServer(ServerConfig(
                port=0, workers=1,
                cache_dir=str(tmp_path / "cache"),
                artifacts_dir=str(tmp_path / "artifacts"),
                chaos_plan="seed=0,protocol.truncate=1.0,limit=1",
            ))
            await server.start()
            client = ResilientClient("127.0.0.1", server.port)
            try:
                response = await client.request(
                    "suite_cell",
                    {"workload": "dhrystone", "variant": "modref/promo",
                     "max_steps": 2_000_000},
                    deadline_s=30.0,
                    idempotency_key="tear-me",
                )
                assert response["ok"]
                assert client.stats.reconnects == 1
                assert client.stats.retries_by_code == {"connection_lost": 1}
            finally:
                await client.close()
                await server.drain()

        run_async(scenario())


class TestSoak:
    @pytest.mark.slow
    def test_small_soak_passes_and_replays_identically(self, tmp_path):
        from repro.chaos.soak import SoakConfig, format_soak_report, run_soak

        def config(subdir):
            return SoakConfig(
                budget=8, seed=11, rate=0.25, workers=1,
                artifacts_dir=str(tmp_path / subdir), out=None,
            )

        first = run_soak(config("a"))
        assert first["passed"], first["invariants"]
        assert first["requests"]["unexplained"] == 0
        assert first["workers"]["leaked_pids"] == []
        report_text = format_soak_report(first)
        assert "PASS" in report_text

        second = run_soak(config("b"))
        assert second["schedule"] == first["schedule"]
        assert second["schedule_digest"] == first["schedule_digest"]

    def test_soak_writes_report(self, tmp_path, monkeypatch):
        from repro.chaos.soak import SoakConfig, run_soak

        monkeypatch.chdir(tmp_path)
        report = run_soak(SoakConfig(
            budget=4, seed=0, rate=0.0, workers=1, out="CHAOS_REPORT.json",
        ))
        on_disk = json.loads((tmp_path / "CHAOS_REPORT.json").read_text())
        assert on_disk["schedule_digest"] == report["schedule_digest"]
        assert on_disk["schema"] == 1
        # rate 0: chaos plumbing on, zero injections, all ok
        assert on_disk["chaos"]["injected"] == 0
        assert on_disk["requests"]["ok"] == 4

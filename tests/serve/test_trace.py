"""End-to-end request tracing through the live server.

These are the tentpole guarantees: a sampled request produces ONE
connected trace whose spans cross the fork boundary into the worker and
back; crashes and deadline kills dump flight-recorder bundles that
contain the killed request's spans; tracing stays strictly opt-in.
"""

import asyncio
import contextlib
import json
import os
import signal

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer, ServerConfig
from repro.trace import (
    SpanEvent,
    attribution,
    group_traces,
    load_spans,
    orphan_spans,
    trace_root,
)
from tests.serve.helpers import FAST_SOURCE, run_async, slow_source


@contextlib.asynccontextmanager
async def serving(**config_kw):
    config_kw.setdefault("port", 0)
    config_kw.setdefault("cache_dir", None)
    config_kw.setdefault("workers", 1)
    server = ReproServer(ServerConfig(**config_kw))
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


@contextlib.asynccontextmanager
async def connected(server: ReproServer):
    client = await ServeClient.connect("127.0.0.1", server.port)
    try:
        yield client
    finally:
        await client.close()


def _events(result: dict) -> list[SpanEvent]:
    return [SpanEvent.from_dict(d) for d in result["trace"]["spans"]]


class TestPropagation:
    def test_traced_run_is_one_connected_trace_across_the_fork(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                result = await client.call(
                    "run", {"source": FAST_SOURCE}, trace=True
                )
                events = _events(result)
                # one trace id everywhere, including worker-side spans
                assert {e.trace_id for e in events} == {
                    result["trace"]["trace_id"]
                }
                assert orphan_spans(events) == []
                root = trace_root(events)
                assert root.name == "request"
                assert root.worker == "serve"

                names = {e.name for e in events}
                assert {"build_job", "queue_wait", "dispatch", "parse",
                        "optimize", "execute", "interp.run"} <= names

                # worker spans really came from the forked process
                workers = {e.worker for e in events}
                assert "w0" in workers
                dispatch = next(e for e in events if e.name == "dispatch")
                assert dispatch.args["pid"] != os.getpid()
                # worker spans are parented under the dispatch span
                worker_roots = [
                    e for e in events
                    if e.worker == "w0" and e.parent_id == dispatch.span_id
                ]
                assert worker_roots

                # attribution accounts for >=90% of the request latency
                att = attribution(events)
                assert att["coverage"] >= 0.9, att

        run_async(scenario())

    def test_pass_spans_carry_decision_counts(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                result = await client.call(
                    "run", {"source": FAST_SOURCE}, trace=True
                )
                promotion = next(
                    e for e in _events(result) if e.name == "promotion"
                )
                assert isinstance(promotion.args.get("decisions"), int)

        run_async(scenario())

    def test_untraced_requests_carry_no_trace_and_mint_no_spans(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                result = await client.call("run", {"source": FAST_SOURCE})
                assert "trace" not in result
                metrics = await client.call("metrics")
                assert metrics["trace"]["spans_exported"] == 0

        run_async(scenario())

    def test_sampled_cache_hit_skips_dispatch_but_still_traces(self, tmp_path):
        async def scenario():
            async with serving(cache_dir=str(tmp_path)) as server:
                async with connected(server) as client:
                    await client.call("run", {"source": FAST_SOURCE})
                    result = await client.call(
                        "run", {"source": FAST_SOURCE}, trace=True
                    )
                    assert result["from_cache"]
                    names = {e.name for e in _events(result)}
                    assert "cache_lookup" in names
                    assert "dispatch" not in names

        run_async(scenario())

    def test_head_sampling_traces_every_request_at_rate_one(self):
        async def scenario():
            async with serving(trace_sample=1.0) as server:
                async with connected(server) as client:
                    result = await client.call("run", {"source": FAST_SOURCE})
                    assert "trace" in result
                    health = await client.call("health")
                    assert health["trace_sample"] == 1.0

        run_async(scenario())

    def test_trace_export_stream_accumulates_traces(self, tmp_path):
        export = tmp_path / "spans.jsonl"

        async def scenario():
            async with serving(trace_export=str(export)) as server:
                async with connected(server) as client:
                    await client.call(
                        "run", {"source": FAST_SOURCE}, trace=True
                    )
                    await client.call(
                        "run", {"source": FAST_SOURCE + "/*2*/"}, trace=True
                    )

        run_async(scenario())
        groups = group_traces(load_spans(export))
        assert len(groups) == 2
        for events in groups.values():
            assert orphan_spans(events) == []


class TestFlightDumps:
    def test_worker_crash_dumps_bundle_with_the_victims_trace(self, tmp_path):
        async def scenario():
            async with serving(
                artifacts_dir=str(tmp_path / "artifacts")
            ) as server:
                async with connected(server) as client:
                    task = asyncio.create_task(
                        client.call(
                            "run",
                            {"source": slow_source(50_000_000, salt=7)},
                            deadline_s=60.0,
                            trace=True,
                        )
                    )

                    async def assassin():
                        kills = 0
                        while not task.done():
                            try:
                                await server.pool.wait_busy(timeout=30)
                            except asyncio.TimeoutError:
                                return
                            if task.done():
                                return
                            slot = server.pool.slots[0]
                            try:
                                os.kill(slot.worker.pid, signal.SIGKILL)
                            except ProcessLookupError:
                                continue
                            kills += 1
                            try:
                                await server.pool.wait_restarted(
                                    kills, timeout=30
                                )
                            except asyncio.TimeoutError:
                                return

                    killer = asyncio.create_task(assassin())
                    try:
                        await asyncio.wait_for(task, 60)
                        raise AssertionError("expected worker_crashed")
                    except ServeError as error:
                        assert error.code == "worker_crashed"
                    finally:
                        killer.cancel()

                    metrics = await client.call("metrics")
                    assert metrics["flight_recorder"]["dumps"] >= 1

            bundles = list((tmp_path / "artifacts").glob("flight-*"))
            assert bundles
            assert any("worker_crashed" in b.name for b in bundles)
            bundle = next(b for b in bundles if "worker_crashed" in b.name)
            meta = json.loads((bundle / "meta.json").read_text())
            assert meta["reason"] == "worker_crashed"
            # the killed request's spans are in the bundle, findable by
            # its trace id
            spans = (bundle / "spans.jsonl").read_text()
            assert meta["trace_id"] is not None
            assert meta["trace_id"] in spans

        run_async(scenario())

    @pytest.mark.slow
    def test_deadline_kill_dumps_bundle_with_the_requests_spans(
        self, tmp_path
    ):
        async def scenario():
            async with serving(
                artifacts_dir=str(tmp_path / "artifacts")
            ) as server:
                async with connected(server) as client:
                    try:
                        await client.call(
                            "run",
                            {"source": slow_source(50_000_000, salt=8)},
                            deadline_s=0.7,
                            trace=True,
                        )
                        raise AssertionError("expected deadline_exceeded")
                    except ServeError as error:
                        assert error.code == "deadline_exceeded"
                # the pool replaced the killed worker; server still serves
                async with connected(server) as client:
                    health = await client.call("health")
                    assert health["status"] == "ok"

            bundles = list((tmp_path / "artifacts").glob("flight-*"))
            assert any("deadline_exceeded" in b.name for b in bundles)
            bundle = next(
                b for b in bundles if "deadline_exceeded" in b.name
            )
            meta = json.loads((bundle / "meta.json").read_text())
            spans = (bundle / "spans.jsonl").read_text()
            # the killed request's server-side spans made it in
            assert meta["trace_id"] in spans
            assert "queue_wait" in spans

        run_async(scenario())

    @pytest.mark.slow
    def test_dump_cap_bounds_bundle_count(self, tmp_path):
        async def scenario():
            async with serving(
                artifacts_dir=str(tmp_path / "artifacts"),
                max_flight_dumps=1,
            ) as server:
                async with connected(server) as client:
                    for salt in (11, 12):
                        try:
                            await client.call(
                                "run",
                                {"source": slow_source(50_000_000,
                                                       salt=salt)},
                                deadline_s=0.5,
                                trace=True,
                            )
                        except ServeError:
                            pass
            assert len(list((tmp_path / "artifacts").glob("flight-*"))) == 1

        run_async(scenario())


class TestObservabilitySurface:
    def test_metrics_expose_queue_flight_and_uptime(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                await client.call("run", {"source": FAST_SOURCE})
                metrics = await client.call("metrics")
                assert metrics["uptime_s"] > 0
                queue = metrics["queue"]
                assert {"depth", "normal_depth", "high_depth",
                        "limit"} <= set(queue)
                flight = metrics["flight_recorder"]
                assert flight["capacity"] == 512
                # the always-on recorder saw the request
                assert flight["occupancy"] >= 1
                assert metrics["trace"]["sample_rate"] == 0.0
                gauges = metrics["metrics"]
                assert "serve.queue_depth_normal" in gauges
                assert "serve.flight_occupancy" in gauges

        run_async(scenario())

    def test_flight_recorder_records_untraced_requests_too(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                await client.call("run", {"source": FAST_SOURCE})
                names = [
                    slot["name"] for slot in server.recorder.snapshot()
                ]
                assert "request.run" in names

        run_async(scenario())

"""Graceful drain while chaos is actively faulting: SIGTERM must land
mid-recovery and the server must still answer every admitted request
and exit 0.

This is the one serve test that exercises the real CLI entrypoint as a
subprocess, because drain-on-signal wiring (signal handler → drain task
→ exit code) lives in ``cmd_serve``, not in :class:`ReproServer`.
"""

import asyncio
import os
import signal
import sys

import pytest

from repro.serve.client import ServeClient
from tests.serve.helpers import run_async, slow_source


async def _start_server(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro.cli", "serve",
        "--port", "0", "--workers", "1", "--no-cache",
        "--chaos-plan", "seed=0,pool.crash_during=1.0,limit=1",
        "--artifacts-dir", str(tmp_path / "artifacts"),
        env=env,
        stderr=asyncio.subprocess.PIPE,
    )
    # first stderr line announces the bound port:
    #   repro-serve listening on 127.0.0.1:PORT (...)
    banner = (await asyncio.wait_for(proc.stderr.readline(), 30)).decode()
    assert "listening on" in banner, banner
    port = int(banner.split("listening on ")[1].split(" ")[0].rsplit(":", 1)[1])
    assert "chaos seed=0" in banner  # the plan made it into the config
    return proc, port


@pytest.mark.slow
def test_sigterm_during_injected_crash_recovery_drains_cleanly(tmp_path):
    async def scenario():
        proc, port = await _start_server(tmp_path)
        try:
            client = await ServeClient.connect("127.0.0.1", port)
            try:
                # slow enough that the injected crash + respawn + retry
                # are all still in flight when the SIGTERM arrives
                task = asyncio.create_task(client.call(
                    "run",
                    {"source": slow_source(400_000)},
                    deadline_s=60.0,
                    idempotency_key="drain-me",
                ))

                # event-driven trigger: fire SIGTERM only once the chaos
                # crash has provably happened (restart counted), so the
                # drain races the *recovery*, not the original dispatch
                async def crash_observed():
                    while True:
                        metrics = await client.call("metrics")
                        values = metrics["metrics"]
                        if values.get("serve.worker_restarts.crash", 0) >= 1:
                            return metrics
                        await asyncio.sleep(0.02)

                metrics = await asyncio.wait_for(crash_observed(), 30)
                assert metrics["chaos"]["injected_by_site"] == {
                    "pool.crash_during": 1
                }
                assert not task.done()  # the retry is still running
                proc.send_signal(signal.SIGTERM)

                # the admitted request is answered, not dropped
                result = await asyncio.wait_for(task, 60)
                assert result["counters"]["total_ops"] > 0
            finally:
                await client.close()

            stderr = (await asyncio.wait_for(proc.communicate(), 30))[1]
            assert await proc.wait() == 0
            assert b"drained" in stderr
        finally:
            if proc.returncode is None:
                proc.kill()
                await proc.wait()

        # the injected crash left its flight-recorder evidence behind
        bundles = list((tmp_path / "artifacts").glob("flight-*"))
        assert any("worker_crash-" in b.name for b in bundles)

    run_async(scenario())

"""Worker pool lifecycle: warm reuse, recycling, crash respawn with
retry-once, and the deadline-fires-mid-cell kill path.

These tests spawn real worker processes and drive them through the
admission queue exactly as the server does.
"""

import asyncio
import os
import signal
import time

from repro.serve.pool import CRASH_RETRIES, WorkerPool
from repro.serve.queue import AdmissionQueue, Ticket
from tests.serve.helpers import make_cell_job, run_async, slow_source


async def submit(queue: AdmissionQueue, job: dict, deadline_s=None, **kw):
    ticket = Ticket(
        job=job,
        future=asyncio.get_running_loop().create_future(),
        deadline=time.monotonic() + deadline_s if deadline_s else None,
        **kw,
    )
    queue.put(ticket)
    return ticket


async def make_pool(size=1, **kw) -> tuple[AdmissionQueue, WorkerPool]:
    queue = AdmissionQueue(limit=16)
    pool = WorkerPool(queue, size=size, **kw)
    await pool.start()
    return queue, pool


class TestWarmWorkers:
    def test_same_worker_serves_repeat_requests(self):
        async def scenario():
            queue, pool = await make_pool(size=1)
            try:
                first = await submit(queue, make_cell_job())
                ok, payload = await first.future
                assert ok, payload
                pid_before = pool.slots[0].worker.pid
                second = await submit(queue, make_cell_job())
                ok, payload = await second.future
                assert ok, payload
                assert pool.slots[0].worker.pid == pid_before
                assert pool.slots[0].worker.handled == 2
                assert payload["cell"]["counters"]["total_ops"] > 0
            finally:
                await pool.stop()

        run_async(scenario())

    def test_compile_memo_makes_repeats_faster(self):
        """The second identical cell skips compilation (warm module)."""

        async def scenario():
            queue, pool = await make_pool(size=1)
            try:
                first = await submit(queue, make_cell_job())
                _, cold = await first.future
                second = await submit(queue, make_cell_job())
                _, warm = await second.future
                assert warm["cell"]["seconds"] < cold["cell"]["seconds"]
            finally:
                await pool.stop()

        run_async(scenario())

    def test_worker_errors_fail_cleanly_and_worker_survives(self):
        async def scenario():
            queue, pool = await make_pool(size=1)
            try:
                bad = await submit(
                    queue, make_cell_job(source="int main( { broken")
                )
                ok, payload = await bad.future
                assert not ok
                assert payload["code"] in ("cell_failed", "internal")
                pid = pool.slots[0].worker.pid
                good = await submit(queue, make_cell_job())
                ok, _ = await good.future
                assert ok
                assert pool.slots[0].worker.pid == pid  # no respawn needed
            finally:
                await pool.stop()

        run_async(scenario())


class TestRecycling:
    def test_worker_recycled_after_n_requests(self):
        async def scenario():
            queue, pool = await make_pool(size=1, recycle_after=2)
            try:
                pid_before = pool.slots[0].worker.pid
                for _ in range(2):
                    ticket = await submit(queue, make_cell_job())
                    ok, _ = await ticket.future
                    assert ok
                # recycling happens after the driver finishes the ticket
                await pool.wait_recycled(1)
                assert pool.slots[0].recycles == 1
                assert pool.slots[0].worker.pid != pid_before
                assert pool.metrics.registry.get("serve.worker_recycles") == 1
                # the fresh worker serves fine
                ticket = await submit(queue, make_cell_job())
                ok, _ = await ticket.future
                assert ok
            finally:
                await pool.stop()

        run_async(scenario())


class TestCrashRecovery:
    def test_kill9_mid_request_retries_once_and_succeeds(self):
        async def scenario():
            queue, pool = await make_pool(size=1)
            try:
                ticket = await submit(
                    queue, make_cell_job(source=slow_source(300000))
                )
                # wait until the worker is actually executing, then SIGKILL
                await pool.wait_busy()
                assert pool.slots[0].busy
                victim = pool.slots[0].worker
                os.kill(victim.pid, signal.SIGKILL)
                ok, payload = await asyncio.wait_for(ticket.future, 60)
                assert ok, payload  # retried on a fresh worker
                assert ticket.attempts == 2
                assert pool.slots[0].restarts == 1
                assert pool.metrics.registry.get("serve.worker_restarts") == 1
                assert not victim.process.is_alive()
                assert victim.process.exitcode == -signal.SIGKILL
            finally:
                await pool.stop()

        run_async(scenario())

    def test_repeated_crashes_fail_cleanly_pool_keeps_serving(self):
        async def scenario():
            queue, pool = await make_pool(size=1)
            try:
                ticket = await submit(
                    queue,
                    # enough fuel that no attempt can finish between kills
                    make_cell_job(source=slow_source(50_000_000, salt=1)),
                )

                async def assassin():
                    kills = 0
                    while not ticket.future.done():
                        # busy toggling (and every restart) wakes the
                        # waiter, so each kill lands on a live attempt
                        # instead of a 10ms polling raster
                        try:
                            await pool.wait_busy(timeout=30)
                        except asyncio.TimeoutError:
                            return
                        if ticket.future.done():
                            return
                        try:
                            os.kill(
                                pool.slots[0].worker.pid, signal.SIGKILL
                            )
                        except ProcessLookupError:
                            continue
                        kills += 1
                        try:
                            await pool.wait_restarted(kills, timeout=30)
                        except asyncio.TimeoutError:
                            return

                killer = asyncio.create_task(assassin())
                ok, payload = await asyncio.wait_for(ticket.future, 60)
                killer.cancel()
                assert not ok
                assert payload["code"] == "worker_crashed"
                assert ticket.attempts == CRASH_RETRIES + 1
                # the pool replaced the dead worker and still serves
                follow_up = await submit(queue, make_cell_job())
                ok, _ = await asyncio.wait_for(follow_up.future, 60)
                assert ok
            finally:
                await pool.stop()

        run_async(scenario())

    def test_idle_crash_respawns_without_burning_an_attempt(self):
        async def scenario():
            queue, pool = await make_pool(size=1)
            try:
                warm = await submit(queue, make_cell_job())
                ok, _ = await warm.future
                assert ok
                victim = pool.slots[0].worker
                os.kill(victim.pid, signal.SIGKILL)
                # reaped = the kill has fully landed; the next dispatch
                # must hit a dead pipe, not race the signal delivery
                await asyncio.get_running_loop().run_in_executor(
                    None, victim.process.join
                )
                ticket = await submit(queue, make_cell_job())
                ok, _ = await asyncio.wait_for(ticket.future, 60)
                assert ok
                assert ticket.attempts == 1  # idle death is not an attempt
            finally:
                await pool.stop()

        run_async(scenario())


class TestDeadlineKill:
    def test_deadline_mid_cell_kills_worker_and_does_not_leak_it(self):
        """Regression: a serve deadline firing mid-cell must terminate the
        worker process (cells cannot be cancelled cooperatively), reap it,
        and leave the pool healthy — not abandon a hot process."""

        async def scenario():
            queue, pool = await make_pool(size=1)
            try:
                victim = pool.slots[0].worker
                ticket = await submit(
                    queue,
                    # minutes of fuel if left alone
                    make_cell_job(source=slow_source(50_000_000)),
                    deadline_s=0.5,
                )
                ok, payload = await asyncio.wait_for(ticket.future, 30)
                assert not ok
                assert payload["code"] == "deadline_exceeded"
                # killed AND reaped: no zombie, no hot leaked process
                assert not victim.process.is_alive()
                assert victim.process.exitcode == -signal.SIGKILL
                assert pool.slots[0].worker is not victim
                assert pool.slots[0].worker.alive()
                assert (
                    pool.metrics.registry.get(
                        "serve.worker_restarts.deadline_kill"
                    )
                    == 1
                )
                # and the replacement serves the next request
                follow_up = await submit(queue, make_cell_job())
                ok, _ = await asyncio.wait_for(follow_up.future, 60)
                assert ok
            finally:
                await pool.stop()

        run_async(scenario())

    def test_deadline_expiring_in_queue_never_reaches_a_worker(self):
        async def scenario():
            queue, pool = await make_pool(size=1)
            try:
                blocker = await submit(
                    queue, make_cell_job(source=slow_source(250000, salt=2))
                )
                await pool.wait_busy()
                doomed = await submit(
                    queue, make_cell_job(), deadline_s=0.001
                )
                ok, payload = await asyncio.wait_for(doomed.future, 60)
                assert not ok and payload["code"] == "deadline_exceeded"
                ok, _ = await asyncio.wait_for(blocker.future, 60)
                assert ok
                # nobody was killed for it: the ticket died in the queue
                assert pool.slots[0].restarts == 0
            finally:
                await pool.stop()

        run_async(scenario())


class TestDrain:
    def test_drain_finishes_inflight_and_shuts_workers_down(self):
        async def scenario():
            queue, pool = await make_pool(size=2)
            tickets = [
                await submit(queue, make_cell_job(source=slow_source(100000, salt=i)))
                for i in range(3)
            ]
            await pool.wait_busy(2)
            await asyncio.wait_for(pool.drain(), 120)
            for ticket in tickets:
                ok, payload = await ticket.future
                assert ok, payload
            # no stray children left behind by the drained pool (other
            # suites may own unrelated multiprocessing children, so check
            # our workers specifically rather than active_children())
            for slot in pool.slots:
                assert not slot.worker.process.is_alive()
                assert slot.worker.process.exitcode is not None

        run_async(scenario())

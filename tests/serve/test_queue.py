"""Admission queue: backpressure, priority lanes, deadlines, draining."""

import asyncio
import time

import pytest

from repro.serve.queue import (
    HIGH_LANE_RESERVE,
    AdmissionQueue,
    Draining,
    QueueFull,
    Ticket,
)
from tests.serve.helpers import run_async


def make_ticket(loop=None, priority="normal", deadline=None, tag=None) -> Ticket:
    future = (loop or asyncio.get_event_loop_policy().get_event_loop()).create_future()
    return Ticket(
        job={"tag": tag}, future=future, deadline=deadline, priority=priority
    )


class TestAdmission:
    def test_fifo_within_lane(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            loop = asyncio.get_running_loop()
            first = Ticket(job={"n": 1}, future=loop.create_future())
            second = Ticket(job={"n": 2}, future=loop.create_future())
            queue.put(first)
            queue.put(second)
            assert (await queue.get()) is first
            assert (await queue.get()) is second

        run_async(scenario())

    def test_queue_full_rejection(self):
        async def scenario():
            queue = AdmissionQueue(limit=2)
            loop = asyncio.get_running_loop()
            queue.put(Ticket(job={}, future=loop.create_future()))
            queue.put(Ticket(job={}, future=loop.create_future()))
            with pytest.raises(QueueFull):
                queue.put(Ticket(job={}, future=loop.create_future()))
            assert queue.depth == 2

        run_async(scenario())

    def test_high_lane_bypasses_normal_limit(self):
        async def scenario():
            queue = AdmissionQueue(limit=1)
            loop = asyncio.get_running_loop()
            queue.put(Ticket(job={}, future=loop.create_future()))
            # normal lane is full, but health-style traffic still fits
            high = Ticket(job={}, future=loop.create_future(), priority="high")
            queue.put(high)
            assert (await queue.get()) is high

        run_async(scenario())

    def test_high_lane_has_its_own_cap(self):
        async def scenario():
            queue = AdmissionQueue(limit=0)
            loop = asyncio.get_running_loop()
            for _ in range(HIGH_LANE_RESERVE):
                queue.put(
                    Ticket(job={}, future=loop.create_future(), priority="high")
                )
            with pytest.raises(QueueFull):
                queue.put(
                    Ticket(job={}, future=loop.create_future(), priority="high")
                )

        run_async(scenario())

    def test_high_dequeued_before_earlier_normal(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            loop = asyncio.get_running_loop()
            normal = Ticket(job={}, future=loop.create_future())
            high = Ticket(job={}, future=loop.create_future(), priority="high")
            queue.put(normal)
            queue.put(high)
            assert (await queue.get()) is high
            assert (await queue.get()) is normal

        run_async(scenario())

    def test_get_waits_for_put(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            loop = asyncio.get_running_loop()
            ticket = Ticket(job={}, future=loop.create_future())

            async def put_later():
                await asyncio.sleep(0.02)
                queue.put(ticket)

            asyncio.create_task(put_later())
            assert (await asyncio.wait_for(queue.get(), 2.0)) is ticket

        run_async(scenario())


class TestDeadlines:
    def test_expired_ticket_failed_at_dequeue(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            loop = asyncio.get_running_loop()
            expired = Ticket(
                job={},
                future=loop.create_future(),
                deadline=time.monotonic() - 0.01,
            )
            live = Ticket(job={}, future=loop.create_future())
            queue.put(expired)
            queue.put(live)
            assert (await queue.get()) is live
            ok, payload = await expired.future
            assert not ok and payload["code"] == "deadline_exceeded"

        run_async(scenario())

    def test_remaining_and_expired(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            ticket = Ticket(
                job={},
                future=loop.create_future(),
                deadline=time.monotonic() + 10,
            )
            assert 9 < ticket.remaining() <= 10
            assert not ticket.expired()
            unbounded = Ticket(job={}, future=loop.create_future())
            assert unbounded.remaining() is None
            assert not unbounded.expired()

        run_async(scenario())


class TestDraining:
    def test_put_after_close_raises(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            queue.close()
            with pytest.raises(Draining):
                queue.put(
                    Ticket(
                        job={},
                        future=asyncio.get_running_loop().create_future(),
                    )
                )

        run_async(scenario())

    def test_close_drains_backlog_then_returns_none(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            loop = asyncio.get_running_loop()
            ticket = Ticket(job={}, future=loop.create_future())
            queue.put(ticket)
            queue.close()
            # already-admitted work still comes out...
            assert (await queue.get()) is ticket
            # ...then the queue reports drained
            assert (await queue.get()) is None

        run_async(scenario())

    def test_close_releases_blocked_getter(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            getter = asyncio.create_task(queue.get())
            await asyncio.sleep(0.01)
            queue.close()
            assert (await asyncio.wait_for(getter, 2.0)) is None

        run_async(scenario())

    def test_fail_pending(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            loop = asyncio.get_running_loop()
            tickets = [
                Ticket(job={}, future=loop.create_future()) for _ in range(3)
            ]
            for ticket in tickets:
                queue.put(ticket)
            assert queue.fail_pending("draining", "bye") == 3
            assert queue.depth == 0
            for ticket in tickets:
                ok, payload = await ticket.future
                assert not ok and payload["code"] == "draining"

        run_async(scenario())


class TestRequeue:
    def test_requeue_goes_to_front(self):
        async def scenario():
            queue = AdmissionQueue(limit=4)
            loop = asyncio.get_running_loop()
            first = Ticket(job={"n": 1}, future=loop.create_future())
            second = Ticket(job={"n": 2}, future=loop.create_future())
            queue.put(first)
            queue.put(second)
            taken = await queue.get()
            queue.requeue(taken)
            assert (await queue.get()) is taken

        run_async(scenario())

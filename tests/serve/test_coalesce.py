"""Single-flight coalescing semantics."""

import asyncio

from repro.serve.coalesce import SingleFlight
from tests.serve.helpers import run_async


class TestSingleFlight:
    def test_first_claim_leads(self):
        async def scenario():
            flight = SingleFlight()
            _, leader = flight.claim("k")
            assert leader
            assert flight.depth == 1

        run_async(scenario())

    def test_followers_share_the_leaders_future(self):
        async def scenario():
            flight = SingleFlight()
            future, leader = flight.claim("k")
            follower_future, follower_leads = flight.claim("k")
            assert leader and not follower_leads
            assert follower_future is future
            flight.resolve("k", True, {"value": 1})
            assert await future == (True, {"value": 1})
            assert flight.depth == 0

        run_async(scenario())

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            flight = SingleFlight()
            _, first_leads = flight.claim("a")
            _, second_leads = flight.claim("b")
            assert first_leads and second_leads

        run_async(scenario())

    def test_resolve_retires_key_for_new_leaders(self):
        async def scenario():
            flight = SingleFlight()
            flight.claim("k")
            flight.resolve("k", False, {"code": "cell_failed", "message": "x"})
            _, leads_again = flight.claim("k")
            assert leads_again  # a completed flight doesn't absorb new work

        run_async(scenario())

    def test_failure_propagates_to_followers(self):
        async def scenario():
            flight = SingleFlight()
            future, _ = flight.claim("k")
            flight.claim("k")
            flight.resolve("k", False, {"code": "queue_full", "message": "b"})
            ok, payload = await future
            assert not ok and payload["code"] == "queue_full"

        run_async(scenario())

    def test_abandon_all(self):
        async def scenario():
            flight = SingleFlight()
            first, _ = flight.claim("a")
            second, _ = flight.claim("b")
            assert flight.abandon_all("draining", "shutdown") == 2
            for future in (first, second):
                ok, payload = await future
                assert not ok and payload["code"] == "draining"
            assert flight.depth == 0

        run_async(scenario())

    def test_concurrent_awaiters_all_wake(self):
        async def scenario():
            flight = SingleFlight()
            future, _ = flight.claim("k")

            async def follower():
                shared, leads = flight.claim("k")
                assert not leads
                return await asyncio.shield(shared)

            tasks = [asyncio.create_task(follower()) for _ in range(5)]
            await asyncio.sleep(0.01)
            flight.resolve("k", True, {"n": 7})
            results = await asyncio.gather(*tasks)
            assert results == [(True, {"n": 7})] * 5

        run_async(scenario())

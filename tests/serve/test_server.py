"""End-to-end server tests over real TCP connections.

Each test starts a :class:`ReproServer` on an ephemeral port inside one
event loop, talks to it with :class:`ServeClient` (or a raw socket for
the framing edge cases), and always tears the server down before the
loop exits so no worker processes leak.
"""

import asyncio
import contextlib
import json

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import ReproServer, ServerConfig
from tests.serve.helpers import FAST_SOURCE, run_async, slow_source


@contextlib.asynccontextmanager
async def serving(**config_kw):
    config_kw.setdefault("port", 0)
    config_kw.setdefault("cache_dir", None)
    config_kw.setdefault("workers", 1)
    server = ReproServer(ServerConfig(**config_kw))
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


@contextlib.asynccontextmanager
async def connected(server: ReproServer):
    client = await ServeClient.connect("127.0.0.1", server.port)
    try:
        yield client
    finally:
        await client.close()


class TestBasicOps:
    def test_health_metrics_run_compile_explain(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                health = await client.call("health")
                assert health["status"] == "ok"
                assert len(health["workers"]) == 1
                assert health["workers"][0]["alive"]

                result = await client.call(
                    "run", {"source": FAST_SOURCE, "name": "smoke"}
                )
                assert result["exit_code"] == 0
                assert result["counters"]["total_ops"] > 0
                assert result["workload"] == "smoke"
                assert not result["from_cache"] and not result["coalesced"]

                compiled = await client.call(
                    "compile", {"source": FAST_SOURCE}
                )
                assert "main" in compiled["il"]
                assert "promotion" in compiled

                explained = await client.call(
                    "explain",
                    {"source": FAST_SOURCE, "filters": {"action": "promote"}},
                )
                assert explained["count"] == len(explained["decisions"])

                metrics = await client.call("metrics")
                values = metrics["metrics"]
                assert values["serve.requests"] >= 4
                assert values["serve.executed"] == 3
                assert "run" in metrics["latency"]
                assert "python" in metrics["host"]

        run_async(scenario())

    def test_suite_cell_runs_paper_workload(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                result = await client.call(
                    "suite_cell",
                    {"workload": "dhrystone", "variant": "modref/promo"},
                )
                assert result["workload"] == "dhrystone"
                assert result["variant"] == "modref/promo"
                assert result["exit_code"] == 0

        run_async(scenario())

    def test_every_engine_is_accepted_and_agrees(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                results = {}
                for engine in ("simple", "threaded", "tier2"):
                    results[engine] = await client.call(
                        "run", {"source": FAST_SOURCE, "engine": engine}
                    )
                reference = results["simple"]
                for engine, result in results.items():
                    assert result["exit_code"] == 0
                    assert result["counters"] == reference["counters"]
                with pytest.raises(ServeError) as excinfo:
                    await client.call(
                        "run", {"source": FAST_SOURCE, "engine": "jit"}
                    )
                assert excinfo.value.code == "invalid_params"

        run_async(scenario())

    def test_invalid_params_surface_as_errors(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                with pytest.raises(ServeError) as excinfo:
                    await client.call("suite_cell", {"workload": "nope"})
                assert excinfo.value.code == "invalid_params"
                with pytest.raises(ServeError) as excinfo:
                    await client.call("run", {})
                assert excinfo.value.code == "invalid_params"
                with pytest.raises(ServeError) as excinfo:
                    await client.call(
                        "explain",
                        {"source": FAST_SOURCE, "filters": {"bogus": 1}},
                    )
                assert excinfo.value.code == "invalid_params"

        run_async(scenario())


class TestCaching:
    def test_repeat_request_served_from_cache(self, tmp_path):
        async def scenario():
            async with serving(cache_dir=str(tmp_path)) as server:
                async with connected(server) as client:
                    params = {"source": FAST_SOURCE, "name": "cached"}
                    first = await client.call("run", params)
                    second = await client.call("run", params)
                assert not first["from_cache"]
                assert second["from_cache"]
                assert second["counters"] == first["counters"]
                assert server.metrics.registry.get("serve.cache_hits") == 1
                assert server.metrics.registry.get("serve.executed") == 1

        run_async(scenario())

    def test_no_cache_bypasses_read_but_still_writes_back(self, tmp_path):
        async def scenario():
            async with serving(cache_dir=str(tmp_path)) as server:
                async with connected(server) as client:
                    params = {"source": FAST_SOURCE, "name": "cold"}
                    first = await client.call("run", params)
                    cold = await client.call(
                        "run", dict(params, no_cache=True)
                    )
                    warm = await client.call("run", params)
                assert not first["from_cache"]
                # the cold request recomputed despite the warm cache...
                assert not cold["from_cache"]
                assert cold["counters"] == first["counters"]
                # ...and the follow-up hit proves the write-back stayed
                assert warm["from_cache"]
                assert server.metrics.registry.get("serve.executed") == 2

        run_async(scenario())

    def test_no_cache_must_be_boolean(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                with pytest.raises(ServeError) as excinfo:
                    await client.call(
                        "run", {"source": FAST_SOURCE, "no_cache": "yes"}
                    )
                assert excinfo.value.code == "invalid_params"

        run_async(scenario())

    def test_suite_cell_cache_is_shared_with_the_scheduler(self, tmp_path):
        """A cell served over TCP lands under the same fingerprint a
        ``repro suite`` run would read — the caches are interchangeable."""
        from repro.interp import MachineOptions
        from repro.pipeline import paper_variants
        from repro.runner.cache import ResultCache
        from repro.runner.scheduler import CellSpec, spec_cache_key
        from repro.workloads import get_workload

        async def scenario():
            async with serving(cache_dir=str(tmp_path)) as server:
                async with connected(server) as client:
                    await client.call(
                        "suite_cell",
                        {
                            "workload": "dhrystone",
                            "variant": "modref/promo",
                            "max_steps": 50_000_000,
                        },
                    )

        run_async(scenario())

        workload = get_workload("dhrystone")
        spec = CellSpec(
            workload=workload.name,
            variant="modref/promo",
            source=workload.source,
            options=paper_variants()["modref/promo"],
            machine=MachineOptions(max_steps=50_000_000, engine="threaded"),
            defines=tuple(sorted(workload.defines.items())),
        )
        payload = ResultCache(str(tmp_path)).get(spec_cache_key(spec))
        assert payload is not None
        assert payload["exit_code"] == 0


class TestCoalescing:
    def test_identical_inflight_requests_execute_once(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                params = {"source": slow_source(50000), "name": "dup"}
                results = await asyncio.gather(
                    *(client.call("run", params) for _ in range(4))
                )
                assert all(r["exit_code"] == 0 for r in results)
                assert server.metrics.registry.get("serve.executed") == 1
                assert server.metrics.registry.get("serve.coalesced") == 3
                assert sum(r["coalesced"] for r in results) == 3

        run_async(scenario())

    def test_distinct_requests_do_not_coalesce(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                results = await asyncio.gather(
                    *(
                        client.call(
                            "run",
                            {"source": slow_source(1000, salt=i), "name": "d"},
                        )
                        for i in range(3)
                    )
                )
                assert len(results) == 3
                assert server.metrics.registry.get("serve.executed") == 3
                assert server.metrics.registry.get("serve.coalesced") == 0

        run_async(scenario())


class TestProtocolEdges:
    def test_malformed_json_gets_bad_request_and_connection_survives(self):
        async def scenario():
            async with serving() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    writer.write(b"this is not json\n")
                    await writer.drain()
                    frame = json.loads(await reader.readline())
                    assert frame["ok"] is False
                    assert frame["error"]["code"] == "bad_request"
                    # same connection still serves valid requests
                    writer.write(b'{"id": 1, "op": "health"}\n')
                    await writer.drain()
                    frame = json.loads(await reader.readline())
                    assert frame["ok"] and frame["id"] == 1
                finally:
                    writer.close()
                    with contextlib.suppress(Exception):
                        await writer.wait_closed()

        run_async(scenario())

    def test_oversized_payload_rejected_and_connection_closed(self):
        async def scenario():
            async with serving(max_line_bytes=4096) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    giant = json.dumps(
                        {"op": "run", "params": {"source": "x" * 8192}}
                    )
                    writer.write(giant.encode() + b"\n")
                    await writer.drain()
                    frame = json.loads(await reader.readline())
                    assert frame["error"]["code"] == "payload_too_large"
                    # ...and the server hangs up
                    assert await reader.read() == b""
                finally:
                    writer.close()
                    with contextlib.suppress(Exception):
                        await writer.wait_closed()

        run_async(scenario())

    def test_unknown_op_echoes_request_id(self):
        async def scenario():
            async with serving() as server, connected(server) as client:
                response = await client.request("frobnicate")
                assert response["ok"] is False
                assert response["error"]["code"] == "unknown_op"

        run_async(scenario())


class TestBackpressure:
    def test_queue_full_is_an_explicit_rejection(self):
        async def scenario():
            async with serving(workers=1, queue_limit=1) as server:
                async with connected(server) as client:
                    responses = await asyncio.gather(
                        *(
                            client.request(
                                "run",
                                {
                                    "source": slow_source(200000, salt=i),
                                    "name": f"flood{i}",
                                },
                            )
                            for i in range(5)
                        )
                    )
                codes = [
                    r["error"]["code"]
                    for r in responses
                    if not r.get("ok")
                ]
                assert "queue_full" in codes
                assert any(r.get("ok") for r in responses)
                rejected = server.metrics.registry.get(
                    "serve.rejected_queue_full"
                )
                assert rejected == codes.count("queue_full")

        run_async(scenario())

    @pytest.mark.slow
    def test_health_stays_responsive_while_workers_busy(self):
        async def scenario():
            async with serving(workers=1) as server:
                async with connected(server) as client:
                    slow = asyncio.create_task(
                        client.call(
                            "run",
                            {"source": slow_source(2_000_000), "name": "busy"},
                        )
                    )
                    await server.pool.wait_busy()
                    health = await asyncio.wait_for(
                        client.call("health", priority="high"), 2.0
                    )
                    assert health["queue_depth"] == 0
                    assert any(w["busy"] for w in health["workers"])
                    result = await asyncio.wait_for(slow, 60)
                    assert result["exit_code"] == 0

        run_async(scenario())


class TestDrain:
    @pytest.mark.slow
    def test_drain_while_busy_answers_inflight_then_closes(self):
        async def scenario():
            server = ReproServer(
                ServerConfig(port=0, cache_dir=None, workers=1)
            )
            await server.start()
            port = server.port
            try:
                async with connected(server) as client:
                    slow = asyncio.create_task(
                        client.request(
                            "run",
                            {"source": slow_source(2_000_000), "name": "drainme"},
                        )
                    )
                    await server.pool.wait_busy()
                    status = await client.call("drain")
                    assert status == {"status": "draining"}
                    # the in-flight cell still completes and is answered
                    response = await asyncio.wait_for(slow, 60)
                    assert response["ok"], response
                    await asyncio.wait_for(server.wait_drained(), 30)
                # listener is closed: new connections are refused
                with pytest.raises(OSError):
                    await asyncio.open_connection("127.0.0.1", port)
                # workers are gone
                for slot in server.pool.slots:
                    assert not slot.worker.process.is_alive()
            finally:
                await server.stop()

        run_async(scenario())

    @pytest.mark.slow
    def test_new_work_rejected_while_draining(self):
        async def scenario():
            async with serving(workers=1) as server:
                async with connected(server) as client:
                    slow = asyncio.create_task(
                        client.request(
                            "run",
                            {"source": slow_source(2_000_000), "name": "last"},
                        )
                    )
                    await server.pool.wait_busy()
                    # the drain ack is sent as soon as the flag is set,
                    # so awaiting it (not a sleep) orders the late
                    # request strictly after the server starts draining
                    assert (await client.call("drain")) == {
                        "status": "draining"
                    }
                    late = await client.request(
                        "run", {"source": FAST_SOURCE, "name": "late"}
                    )
                    assert late["ok"] is False
                    assert late["error"]["code"] == "draining"
                    assert (await asyncio.wait_for(slow, 60))["ok"]

        run_async(scenario())

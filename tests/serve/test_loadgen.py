"""Load-generator campaigns against an in-process server, including the
fault-injection campaign that kills a worker mid-request."""

import asyncio
import json
import os
import signal

from repro.serve.client import LoadgenConfig, format_loadgen, run_loadgen
from repro.serve.server import ReproServer, ServerConfig
from tests.serve.helpers import run_async


def loadgen_config(port: int, **kw) -> LoadgenConfig:
    kw.setdefault("programs", ("dhrystone",))
    kw.setdefault("concurrency", 4)
    kw.setdefault("deadline_s", 60.0)
    kw.setdefault("out", None)
    return LoadgenConfig(host="127.0.0.1", port=port, **kw)


class TestCampaign:
    def test_warm_cache_campaign_is_clean(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"

        async def scenario():
            server = ReproServer(
                ServerConfig(port=0, workers=2, cache_dir=str(tmp_path / "cache"))
            )
            await server.start()
            try:
                payload = await run_loadgen(
                    loadgen_config(server.port, requests=40, out=str(out))
                )
            finally:
                await server.stop()
            return payload

        payload = run_async(scenario())
        totals = payload["totals"]
        assert totals["requests"] == 40
        assert totals["ok"] == 40
        assert totals["errors"] == 0 and totals["shed"] == 0
        # warm-up primed all 4 variants; the campaign itself is cache hits
        assert payload["warmup"]["distinct_cells"] == 4
        assert totals["from_cache"] == 40
        assert totals["rps"] > 0
        assert payload["latency_ms"]["p50"] <= payload["latency_ms"]["p99"]
        assert payload["server"]["health"]["status"] == "ok"
        assert "python" in payload["host"]

        written = json.loads(out.read_text())
        assert written["totals"]["ok"] == 40

        text = format_loadgen(payload)
        assert "req/s" in text and "p99" in text

    def test_campaign_without_warmup_executes_cells(self, tmp_path):
        async def scenario():
            server = ReproServer(
                ServerConfig(port=0, workers=2, cache_dir=None)
            )
            await server.start()
            try:
                payload = await run_loadgen(
                    loadgen_config(
                        server.port,
                        requests=8,
                        concurrency=2,
                        warmup=False,
                    )
                )
                executed = server.metrics.registry.get("serve.executed")
            finally:
                await server.stop()
            return payload, executed

        payload, executed = run_async(scenario())
        totals = payload["totals"]
        assert totals["ok"] == 8
        assert totals["errors"] == 0
        assert totals["from_cache"] == 0
        # no cache: everything either executed or coalesced onto a leader
        assert executed + totals["coalesced"] == 8


class TestTracedCampaign:
    def test_trace_sample_yields_per_request_breakdowns(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"

        async def scenario():
            server = ReproServer(
                ServerConfig(port=0, workers=2, cache_dir=None)
            )
            await server.start()
            try:
                payload = await run_loadgen(
                    loadgen_config(
                        server.port,
                        requests=12,
                        concurrency=2,
                        warmup=False,
                        trace_sample=0.5,
                        out=str(out),
                    )
                )
            finally:
                await server.stop()
            return payload

        payload = run_async(scenario())
        assert payload["totals"]["errors"] == 0
        breakdown = payload["per_request_breakdown"]
        # (index * 0.5) % 1.0 < 0.5 traces every other request
        assert breakdown["sampled"] == 6
        for stage in ("queue_ms", "cache_ms", "coalesce_ms",
                      "compile_ms", "execute_ms", "other_ms"):
            assert {"p50", "p95", "p99", "mean"} <= set(breakdown[stage])
        # span coverage holds the >=90%-of-latency bar: the root books
        # its self time as an explicit framing child at close, so even
        # sub-ms cache hits (where bookkeeping alone is ~15% of the
        # request) stay fully attributed
        assert breakdown["coverage"]["min"] >= 0.9
        assert payload["config"]["trace_sample"] == 0.5
        # the breakdown also lands in the written benchmark file
        written = json.loads(out.read_text())
        assert written["per_request_breakdown"]["sampled"] == 6
        text = format_loadgen(payload)
        assert "traced 6 request(s)" in text
        assert "coverage mean" in text

    def test_traced_cache_hits_hold_the_coverage_bar(self, tmp_path):
        """Sub-ms cache hits used to sink coverage to ~0.7: the span
        bookkeeping between build_job and cache_lookup went unclaimed.
        The request root now books its self time as a cache_hit_framing
        child at span close, so even an all-hits campaign satisfies the
        >=90% attribution contract regardless of machine load."""

        async def scenario():
            server = ReproServer(
                ServerConfig(
                    port=0, workers=2, cache_dir=str(tmp_path / "cache")
                )
            )
            await server.start()
            try:
                payload = await run_loadgen(
                    loadgen_config(
                        server.port, requests=30, trace_sample=1.0
                    )
                )
            finally:
                await server.stop()
            return payload

        payload = run_async(scenario())
        totals = payload["totals"]
        assert totals["ok"] == 30 and totals["from_cache"] == 30
        breakdown = payload["per_request_breakdown"]
        assert breakdown["sampled"] == 30
        assert breakdown["coverage"]["min"] >= 0.9
        # all hits: the time sits in the cache bucket, not compile/execute
        assert breakdown["cache_ms"]["mean"] > 0
        assert breakdown["compile_ms"]["mean"] == 0
        assert breakdown["execute_ms"]["mean"] == 0

    def test_cold_slice_populates_compile_and_execute_buckets(
        self, tmp_path
    ):
        """With a warm cache every request is a hit and the breakdown's
        compile/execute buckets read zero; a cold (no_cache) slice forces
        real work so miss-path latency shows up in the attribution."""

        async def scenario():
            server = ReproServer(
                ServerConfig(
                    port=0, workers=2, cache_dir=str(tmp_path / "cache")
                )
            )
            await server.start()
            try:
                payload = await run_loadgen(
                    loadgen_config(
                        server.port,
                        requests=20,
                        concurrency=2,
                        trace_sample=0.5,
                        cold_fraction=0.25,
                    )
                )
            finally:
                await server.stop()
            return payload

        payload = run_async(scenario())
        totals = payload["totals"]
        assert totals["ok"] == 20
        # (index * 0.25) % 1.0 < 0.25 puts every 4th request in the slice
        assert totals["cold"] == 5
        assert totals["from_cache"] == 15
        breakdown = payload["per_request_breakdown"]
        # cold requests are always traced, so the miss path is sampled
        assert breakdown["sampled"] >= 10
        assert breakdown["coverage"]["min"] >= 0.9
        assert (
            breakdown["compile_ms"]["mean"] > 0
            or breakdown["execute_ms"]["mean"] > 0
        )
        assert payload["config"]["cold_fraction"] == 0.25
        text = format_loadgen(payload)
        assert "cold 5" in text

    def test_trace_sample_zero_reports_nothing_sampled(self, tmp_path):
        async def scenario():
            server = ReproServer(
                ServerConfig(
                    port=0, workers=1, cache_dir=str(tmp_path / "cache")
                )
            )
            await server.start()
            try:
                payload = await run_loadgen(
                    loadgen_config(server.port, requests=4)
                )
            finally:
                await server.stop()
            return payload

        payload = run_async(scenario())
        assert payload["per_request_breakdown"]["sampled"] == 0
        assert "traced" not in format_loadgen(payload)


class TestFaultInjection:
    def test_worker_killed_mid_campaign_server_stays_healthy(self, tmp_path):
        """A worker SIGKILLed while executing must not fail the campaign:
        the request retries on a fresh worker and the server keeps serving."""

        async def scenario():
            server = ReproServer(
                ServerConfig(
                    port=0,
                    workers=2,
                    cache_dir=None,
                    # crash replacements dump flight bundles now; keep
                    # them out of the working directory
                    artifacts_dir=str(tmp_path / "artifacts"),
                )
            )
            await server.start()

            killed = asyncio.Event()

            async def killer():
                while not killed.is_set():
                    busy = [
                        worker
                        for worker in server.pool.describe()
                        if worker["busy"]
                    ]
                    if busy:
                        try:
                            os.kill(busy[0]["pid"], signal.SIGKILL)
                        except ProcessLookupError:
                            continue
                        killed.set()
                        return
                    await asyncio.sleep(0.002)

            killer_task = asyncio.create_task(killer())
            try:
                payload = await run_loadgen(
                    loadgen_config(server.port, requests=24, warmup=False)
                )
                await asyncio.wait_for(killed.wait(), 10)
                restarts = server.metrics.registry.get("serve.worker_restarts")
                health_workers = server.pool.describe()
            finally:
                killer_task.cancel()
                await server.stop()
            return payload, restarts, health_workers

        payload, restarts, health_workers = run_async(scenario())
        totals = payload["totals"]
        assert totals["ok"] == 24, payload["errors_by_code"]
        assert totals["errors"] == 0
        assert restarts >= 1
        assert payload["server"]["health"]["status"] == "ok"
        # the pool replaced the killed worker and reports it alive
        assert all(worker["alive"] for worker in health_workers)

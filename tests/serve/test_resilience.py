"""Client-side resilience state machines under a fake clock.

Every test here is pure: the breaker's clock, the retry policy's rng,
and the resilient client's sleep/connect/clock are all injected, so the
whole retry/breaker/hedge behaviour runs in microseconds with zero real
sleeps and no server.
"""

import asyncio
import random

import pytest

from repro.serve.resilience import (
    RETRYABLE_CODES,
    CircuitBreaker,
    CircuitOpen,
    LatencyTracker,
    ResilienceStats,
    RetryPolicy,
)
from repro.serve.client import ResilientClient
from tests.serve.helpers import run_async


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeServeClient:
    """Scripted stand-in for ServeClient: one behaviour per attempt.

    Behaviours: ``("ok", payload)``, ``("error", code)``, ``"crash"``
    (transport failure), ``"hang"`` (never responds — for hedging).
    """

    def __init__(self, script) -> None:
        self.script = script
        self.requests = []  # (op, idempotency_key) per attempt
        self.closed = False

    async def request(self, op, params=None, **kw):
        self.requests.append((op, kw.get("idempotency_key")))
        action = self.script.pop(0)
        if action == "crash":
            raise ConnectionError("scripted transport failure")
        if action == "hang":
            await asyncio.get_running_loop().create_future()
        kind, value = action
        if kind == "ok":
            return {"ok": True, "result": value}
        return {"ok": False, "error": {"code": value, "message": "scripted"}}

    async def close(self) -> None:
        self.closed = True


def make_client(script, *, hedge=False, **kw):
    """A ResilientClient wired to a scripted fake: no sockets, no time.

    Returns ``(client, sleeps)`` where ``sleeps`` records every backoff
    the client would have slept.
    """
    fakes = [FakeServeClient(s) for s in script]
    sleeps = []

    async def connect(host, port):
        return fakes.pop(0)

    async def sleep(seconds):
        sleeps.append(seconds)

    kw.setdefault(
        "retry", RetryPolicy(max_attempts=4, jitter=0.0, base_delay_s=0.1)
    )
    kw.setdefault("breaker", CircuitBreaker(failure_threshold=3))
    client = ResilientClient(
        "fake", 0, hedge=hedge, connect=connect, sleep=sleep,
        key_prefix="t", **kw,
    )
    return client, sleeps


class TestRetryPolicy:
    def test_retryable_vocabulary_is_closed(self):
        policy = RetryPolicy()
        for code in RETRYABLE_CODES:
            assert policy.retryable(code)
        for code in ("cell_failed", "invalid_params", "draining", "internal"):
            assert not policy.retryable(code)

    def test_nominal_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5
        )
        assert policy.schedule() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_draws_from_the_bottom_fraction(self):
        policy = RetryPolicy(
            base_delay_s=1.0, jitter=0.5, rng=random.Random(7)
        )
        for _ in range(50):
            delay = policy.delay_s(1)
            assert 0.5 <= delay <= 1.0

    def test_zero_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.25, jitter=0.0)
        assert policy.delay_s(1) == 0.25
        assert policy.delay_s(2) == 0.5


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_s=30.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(29.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # concurrent caller while probe in flight
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_and_restarts_the_clock(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_s=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        clock.advance(9.9)
        assert not breaker.allow()  # full recovery window again
        clock.advance(0.2)
        assert breaker.allow()


class TestLatencyTracker:
    def test_empty_has_no_p95(self):
        assert LatencyTracker().p95() is None

    def test_p95_of_uniform_samples(self):
        tracker = LatencyTracker()
        for ms in range(1, 101):
            tracker.record(ms / 1000)
        assert tracker.p95() == pytest.approx(0.095)

    def test_window_evicts_oldest(self):
        tracker = LatencyTracker(window=4)
        for value in (1.0, 1.0, 1.0, 1.0, 0.1, 0.1, 0.1, 0.1):
            tracker.record(value)
        assert len(tracker) == 4
        assert tracker.p95() == pytest.approx(0.1)


class TestResilientClientRetries:
    def test_retries_retryable_code_then_succeeds(self):
        client, sleeps = make_client(
            [[("error", "worker_crashed"), ("ok", {"n": 1})]]
        )

        async def scenario():
            response = await client.request("run", {"x": 1})
            assert response["ok"]
            assert client.stats.attempts == 2
            assert client.stats.retried == 1
            assert client.stats.retries_by_code == {"worker_crashed": 1}
            assert sleeps == [0.1]  # one backoff, zero real sleeps

        run_async(scenario())

    def test_same_idempotency_key_on_every_attempt(self):
        client, _ = make_client(
            [[("error", "queue_full"), ("error", "queue_full"), ("ok", {})]]
        )

        async def scenario():
            await client.request("run", {}, idempotency_key="job-9")
            fake = client._client
            assert [key for _, key in fake.requests] == ["job-9"] * 3

        run_async(scenario())

    def test_non_retryable_code_returns_immediately(self):
        client, sleeps = make_client([[("error", "cell_failed")]])

        async def scenario():
            response = await client.request("run", {})
            assert response["error"]["code"] == "cell_failed"
            assert client.stats.attempts == 1
            assert client.stats.retried == 0
            assert sleeps == []
            # a definitive answer is host health, not failure
            assert client.breaker.state == CircuitBreaker.CLOSED

        run_async(scenario())

    def test_exhausted_retries_return_the_last_error(self):
        client, sleeps = make_client(
            [[("error", "deadline_exceeded")] * 4],
            breaker=CircuitBreaker(failure_threshold=10),
        )

        async def scenario():
            response = await client.request("run", {})
            assert response["error"]["code"] == "deadline_exceeded"
            assert client.stats.attempts == 4
            assert client.stats.retried == 3
            assert len(sleeps) == 3

        run_async(scenario())

    def test_transport_failure_reconnects_with_backoff(self):
        # two scripted connections: the first one's only attempt crashes,
        # the second serves the retry
        client, sleeps = make_client([["crash"], [("ok", {"n": 2})]])

        async def scenario():
            response = await client.request("run", {})
            assert response["ok"]
            assert client.stats.reconnects == 1
            assert client.stats.retries_by_code == {"connection_lost": 1}
            assert sleeps == [0.1]

        run_async(scenario())

    def test_transport_failure_on_last_attempt_raises(self):
        client, _ = make_client(
            [["crash"], ["crash"]],
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
        )

        async def scenario():
            with pytest.raises(ConnectionError):
                await client.request("run", {})
            assert client.stats.attempts == 2

        run_async(scenario())


class TestResilientClientBreaker:
    def test_open_breaker_sheds_client_side(self):
        clock = FakeClock()
        client, _ = make_client(
            [[("error", "worker_crashed")] * 2],
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            breaker=CircuitBreaker(failure_threshold=2, clock=clock),
        )

        async def scenario():
            response = await client.request("run", {})
            assert not response["ok"]  # both attempts failed → breaker open
            assert client.breaker.state == CircuitBreaker.OPEN
            with pytest.raises(CircuitOpen):
                await client.request("run", {})
            assert client.stats.breaker_open == 1

        run_async(scenario())

    def test_half_open_probe_success_recloses(self):
        clock = FakeClock()
        client, _ = make_client(
            [[("error", "worker_crashed"), ("ok", {})]],
            retry=RetryPolicy(max_attempts=1),
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_s=5.0, clock=clock
            ),
        )

        async def scenario():
            await client.request("run", {})  # trips the breaker
            assert client.breaker.state == CircuitBreaker.OPEN
            clock.advance(5.1)
            response = await client.request("run", {})  # the probe
            assert response["ok"]
            assert client.breaker.state == CircuitBreaker.CLOSED

        run_async(scenario())


class TestHedging:
    def test_slow_primary_fires_backup_and_backup_wins(self):
        # primary hangs forever; the hedge timer (fake sleep = instant)
        # fires, the backup answers, the primary is cancelled
        client, _ = make_client(
            [[  # one connection, two in-flight requests
                "hang",
                ("ok", {"winner": "backup"}),
            ]],
            hedge=True,
        )
        client.latency.record(0.05)  # a p95 exists → hedging is armed

        async def scenario():
            response = await client.request("run", {}, idempotency_key="h-1")
            assert response["result"] == {"winner": "backup"}
            assert client.stats.hedged == 1
            assert client.stats.hedge_wins == 1
            fake = client._client
            # both carried the same key: the backup coalesced server-side
            assert [key for _, key in fake.requests] == ["h-1", "h-1"]

        run_async(scenario())

    def test_fast_primary_never_hedges(self):
        client, _ = make_client([[("ok", {"winner": "primary"})]], hedge=True)
        client.latency.record(0.05)

        async def scenario():
            response = await client.request("run", {})
            assert response["result"] == {"winner": "primary"}
            assert client.stats.hedged == 0

        run_async(scenario())

    def test_no_hedge_without_latency_samples(self):
        client, _ = make_client([[("ok", {})]], hedge=True)

        async def scenario():
            assert client.latency.p95() is None
            await client.request("run", {})
            assert client.stats.hedged == 0

        run_async(scenario())


class TestStats:
    def test_as_dict_is_sorted_and_complete(self):
        stats = ResilienceStats()
        stats.attempts = 5
        stats.record_retry("queue_full")
        stats.record_retry("worker_crashed")
        stats.record_retry("queue_full")
        payload = stats.as_dict()
        assert payload["retried"] == 3
        assert list(payload["retries_by_code"]) == [
            "queue_full", "worker_crashed",
        ]
        assert set(payload) == {
            "attempts", "retried", "hedged", "hedge_wins",
            "reconnects", "breaker_open", "retries_by_code",
        }

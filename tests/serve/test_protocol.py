"""Protocol framing: parsing, validation, and the error vocabulary."""

import json

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    encode_error,
    encode_frame,
    encode_result,
    parse_request,
)


def frame(payload: dict) -> bytes:
    return json.dumps(payload).encode() + b"\n"


class TestParseRequest:
    def test_minimal_valid(self):
        request = parse_request(frame({"op": "health"}))
        assert request.op == "health"
        assert request.id is None
        assert request.params == {}
        assert request.deadline_s is None
        assert request.priority == "normal"

    def test_full_request(self):
        request = parse_request(
            frame(
                {
                    "id": 42,
                    "op": "suite_cell",
                    "params": {"workload": "dhrystone"},
                    "deadline_s": 2.5,
                    "priority": "high",
                }
            )
        )
        assert request.id == 42
        assert request.params == {"workload": "dhrystone"}
        assert request.deadline_s == 2.5
        assert request.priority == "high"

    def test_string_id_passes_through(self):
        assert parse_request(frame({"id": "abc", "op": "health"})).id == "abc"

    @pytest.mark.parametrize(
        "raw",
        [b"not json\n", b"{truncated\n", b"\xff\xfe\n"],
    )
    def test_malformed_json_is_bad_request(self, raw):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(raw)
        assert excinfo.value.code == "bad_request"

    def test_non_object_frame_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"[1, 2, 3]\n")
        assert excinfo.value.code == "bad_request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(frame({"id": 7, "op": "frobnicate"}))
        assert excinfo.value.code == "unknown_op"
        # the id still travels with the error so the client can match it
        assert excinfo.value.request_id == 7

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(frame({"id": 1}))
        assert excinfo.value.code == "unknown_op"

    @pytest.mark.parametrize("deadline", [0, -1, "soon"])
    def test_bad_deadline(self, deadline):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(frame({"op": "run", "deadline_s": deadline}))
        assert excinfo.value.code == "invalid_params"

    def test_bad_priority(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(frame({"op": "run", "priority": "urgent"}))
        assert excinfo.value.code == "invalid_params"

    def test_non_object_params(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(frame({"op": "run", "params": [1]}))
        assert excinfo.value.code == "invalid_params"

    def test_object_id_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(frame({"op": "health", "id": {"nested": 1}}))
        assert excinfo.value.code == "bad_request"


class TestEncoding:
    def test_result_roundtrip(self):
        line = encode_result(9, {"value": 3})
        payload = json.loads(line)
        assert line.endswith(b"\n")
        assert payload == {"id": 9, "ok": True, "result": {"value": 3}}

    def test_error_roundtrip(self):
        payload = json.loads(encode_error("x", "queue_full", "busy"))
        assert payload == {
            "id": "x",
            "ok": False,
            "error": {"code": "queue_full", "message": "busy"},
        }

    def test_error_codes_are_closed_vocabulary(self):
        with pytest.raises(AssertionError):
            encode_error(None, "made_up_code", "nope")

    def test_frame_is_single_line(self):
        line = encode_frame({"text": "with\nnewline"})
        assert line.count(b"\n") == 1 and line.endswith(b"\n")

    def test_every_op_is_known(self):
        assert OPS == {
            "compile", "run", "suite_cell", "explain",
            "health", "drain", "metrics",
        }
        assert "queue_full" in ERROR_CODES
        assert "deadline_exceeded" in ERROR_CODES

"""Tests for the interpreter benchmark (``repro bench``)."""

from __future__ import annotations

import json

from repro.bench import (
    BENCH_SCHEMA,
    QUICK_PROGRAMS,
    bench_interpreters,
    format_bench,
    write_bench_json,
)
from repro.cli import main
from repro.workloads import workload_names


def test_payload_schema_and_equivalence():
    payload = bench_interpreters(["fft"], repeats=1)
    assert payload["schema"] == BENCH_SCHEMA
    entry = payload["programs"]["fft"]
    for engine in ("simple", "threaded"):
        cell = entry[engine]
        assert set(cell) == {
            "wall_s", "total_ops", "ops_per_sec", "engine", "speedup_vs_simple"
        }
        assert cell["engine"] == engine
        assert cell["wall_s"] > 0
        assert cell["ops_per_sec"] > 0
    # both engines executed the identical op stream
    assert entry["simple"]["total_ops"] == entry["threaded"]["total_ops"]
    assert entry["simple"]["speedup_vs_simple"] == 1.0
    summary = payload["summary"]
    assert summary["programs"] == 1
    assert summary["geomean_speedup"] == entry["threaded"]["speedup_vs_simple"]


def test_quick_subset_is_valid():
    assert set(QUICK_PROGRAMS) <= set(workload_names())


def test_write_bench_json(tmp_path):
    payload = {"schema": BENCH_SCHEMA, "programs": {}, "summary": {}}
    path = tmp_path / "BENCH_interp.json"
    write_bench_json(path, payload)
    assert json.loads(path.read_text()) == payload


def test_format_bench_renders_summary():
    payload = bench_interpreters(["fft"], repeats=1)
    table = format_bench(payload)
    assert "geomean speedup" in table
    assert "fft" in table


def test_cli_bench_writes_json(tmp_path, capsys):
    out = tmp_path / "BENCH_interp.json"
    code = main(["bench", "fft", "--repeats", "1", "--out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert "fft" in payload["programs"]
    assert "geomean speedup" in capsys.readouterr().out


def test_cli_bench_rejects_unknown_workload(tmp_path):
    assert main(["bench", "nosuch", "--out", str(tmp_path / "b.json")]) == 2

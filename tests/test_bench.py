"""Tests for the interpreter benchmark (``repro bench``)."""

from __future__ import annotations

import json

from repro.bench import (
    BENCH_SCHEMA,
    ENGINE_PAIRS,
    ENGINES,
    QUICK_PROGRAMS,
    bench_interpreters,
    check_regression,
    format_bench,
    write_bench_json,
)
from repro.cli import main
from repro.workloads import workload_names


def test_payload_schema_and_equivalence():
    payload = bench_interpreters(["fft"], repeats=1)
    assert payload["schema"] == BENCH_SCHEMA
    entry = payload["programs"]["fft"]
    for engine in ENGINES:
        cell = entry[engine]
        expected_keys = {
            "wall_s", "total_ops", "ops_per_sec", "engine", "speedup_vs_simple"
        }
        if engine == "tier2":
            expected_keys.add("speedup_vs_threaded")
        assert set(cell) == expected_keys
        assert cell["engine"] == engine
        assert cell["wall_s"] > 0
        assert cell["ops_per_sec"] > 0
    # every engine executed the identical op stream
    assert entry["simple"]["total_ops"] == entry["threaded"]["total_ops"]
    assert entry["simple"]["total_ops"] == entry["tier2"]["total_ops"]
    assert entry["simple"]["speedup_vs_simple"] == 1.0
    summary = payload["summary"]
    assert summary["programs"] == 1
    # schema-1 headline numbers are preserved (threaded vs simple)...
    assert summary["geomean_speedup"] == entry["threaded"]["speedup_vs_simple"]
    # ...and the per-pair summary covers every engine pair
    assert set(summary["speedups"]) == {
        f"{num}_vs_{den}" for num, den in ENGINE_PAIRS
    }
    for cell in summary["speedups"].values():
        assert {"geomean", "min", "max"} <= set(cell)
    assert (
        summary["speedups"]["tier2_vs_threaded"]["geomean"]
        == entry["tier2"]["speedup_vs_threaded"]
    )
    for engine in ENGINES:
        assert summary[f"total_wall_{engine}_s"] > 0


def test_quick_subset_is_valid():
    assert set(QUICK_PROGRAMS) <= set(workload_names())


def test_write_bench_json(tmp_path):
    payload = {"schema": BENCH_SCHEMA, "programs": {}, "summary": {}}
    path = tmp_path / "BENCH_interp.json"
    write_bench_json(path, payload)
    assert json.loads(path.read_text()) == payload


def test_format_bench_renders_summary():
    payload = bench_interpreters(["fft"], repeats=1)
    table = format_bench(payload)
    assert "geomean speedup" in table
    assert "fft" in table
    assert "tier2 vs threaded" in table


class TestRegressionGate:
    def _payload(self, **geomeans) -> dict:
        return {
            "summary": {
                "speedups": {
                    pair: {"geomean": value, "min": value, "max": value}
                    for pair, value in geomeans.items()
                }
            }
        }

    def test_no_regression_within_tolerance(self):
        baseline = self._payload(tier2_vs_threaded=2.0, threaded_vs_simple=4.0)
        current = self._payload(tier2_vs_threaded=1.9, threaded_vs_simple=3.8)
        assert check_regression(current, baseline, tolerance_pct=25.0) == []

    def test_regression_past_tolerance_fails_per_pair(self):
        baseline = self._payload(tier2_vs_threaded=2.0, threaded_vs_simple=4.0)
        current = self._payload(tier2_vs_threaded=1.0, threaded_vs_simple=3.8)
        failures = check_regression(current, baseline, tolerance_pct=25.0)
        assert len(failures) == 1
        assert "tier2_vs_threaded" in failures[0]

    def test_schema1_baseline_gates_only_threaded_pair(self):
        baseline = {"summary": {"geomean_speedup": 4.0}}
        ok = self._payload(threaded_vs_simple=3.9, tier2_vs_threaded=0.1)
        assert check_regression(ok, baseline, tolerance_pct=25.0) == []
        bad = self._payload(threaded_vs_simple=1.0, tier2_vs_threaded=0.1)
        failures = check_regression(bad, baseline, tolerance_pct=25.0)
        assert len(failures) == 1
        assert "threaded_vs_simple" in failures[0]

    def test_missing_pair_in_current_is_skipped(self):
        baseline = self._payload(tier2_vs_threaded=2.0)
        current = self._payload(threaded_vs_simple=4.0)
        assert check_regression(current, baseline, tolerance_pct=25.0) == []


def test_cli_bench_writes_json(tmp_path, capsys):
    out = tmp_path / "BENCH_interp.json"
    code = main(["bench", "fft", "--repeats", "1", "--out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert "fft" in payload["programs"]
    assert "geomean speedup" in capsys.readouterr().out


def test_cli_bench_gates_against_baseline(tmp_path, capsys):
    out = tmp_path / "BENCH_interp.json"
    baseline = tmp_path / "baseline.json"
    # an impossible baseline: tier2 would need a 1000x geomean
    baseline.write_text(json.dumps({
        "summary": {"speedups": {"tier2_vs_threaded": {"geomean": 1000.0}}}
    }))
    code = main([
        "bench", "fft", "--repeats", "1", "--out", str(out),
        "--baseline", str(baseline), "--tolerance", "25",
    ])
    assert code == 1
    assert "bench regression" in capsys.readouterr().err

    # a trivially satisfiable baseline passes
    baseline.write_text(json.dumps({
        "summary": {"speedups": {"tier2_vs_threaded": {"geomean": 0.001}}}
    }))
    code = main([
        "bench", "fft", "--repeats", "1", "--out", str(out),
        "--baseline", str(baseline), "--tolerance", "25",
    ])
    assert code == 0
    assert "no regression" in capsys.readouterr().err


def test_cli_bench_rejects_unknown_workload(tmp_path):
    assert main(["bench", "nosuch", "--out", str(tmp_path / "b.json")]) == 2

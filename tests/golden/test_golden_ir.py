"""Golden-IR snapshots: the regression net for every pass change.

For each of the 14 workloads under three pipeline configurations (O0,
full, pointer), the printed IR at three stage boundaries — ``frontend``
(straight out of the lowering), ``analysis`` (interprocedural facts
applied), ``optimized`` (final verified form) — is compared byte-for-
byte against a committed snapshot in ``snapshots/``.

A mismatch fails with a unified diff of the first diverging stage.  If
the change is an *intended* compiler-output change, regenerate with::

    pytest tests/golden --update-goldens

and commit the snapshot churn alongside the pass change — the diff in
review then shows exactly what the pass did to every program.
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from repro.ir.printer import format_module
from repro.pipeline import Analysis, PipelineOptions, compile_source
from repro.workloads import get_workload, workload_names

SNAPSHOT_DIR = Path(__file__).parent / "snapshots"

#: section separator inside a snapshot file; IR never starts a line
#: with ``;; ==`` so splitting on it is unambiguous
STAGE_HEADER = ";; == stage: {stage} =="

STAGES = ("frontend", "analysis", "optimized")

CONFIGS = {
    "O0": PipelineOptions(
        analysis=Analysis.NONE,
        promotion=False,
        pointer_promotion=False,
        value_numbering=False,
        constant_propagation=False,
        licm=False,
        pre=False,
        dce=False,
        clean=False,
        run_regalloc=False,
    ),
    "full": PipelineOptions(),
    "pointer": PipelineOptions(
        analysis=Analysis.POINTER, pointer_promotion=True
    ),
}


def capture_stages(workload_name: str, config: str) -> dict[str, str]:
    wl = get_workload(workload_name)
    stages: dict[str, str] = {}

    def hook(stage: str, module) -> None:
        stages[stage] = format_module(module)

    compile_source(
        wl.source,
        CONFIGS[config],
        name=wl.name,
        defines=wl.defines or None,
        stage_hook=hook,
    )
    assert set(stages) == set(STAGES)
    return stages


def render_snapshot(stages: dict[str, str]) -> str:
    parts = []
    for stage in STAGES:
        parts.append(STAGE_HEADER.format(stage=stage))
        parts.append(stages[stage].rstrip("\n"))
    return "\n".join(parts) + "\n"


def parse_snapshot(text: str) -> dict[str, str]:
    stages: dict[str, str] = {}
    current: str | None = None
    lines: list[str] = []
    for line in text.splitlines():
        if line.startswith(";; == stage: ") and line.endswith(" =="):
            if current is not None:
                stages[current] = "\n".join(lines).rstrip("\n")
            current = line[len(";; == stage: ") : -len(" ==")]
            lines = []
        else:
            lines.append(line)
    if current is not None:
        stages[current] = "\n".join(lines).rstrip("\n")
    return stages


def snapshot_path(workload_name: str, config: str) -> Path:
    return SNAPSHOT_DIR / f"{workload_name}__{config}.ir"


def stage_diff(stage: str, want: str, got: str, context: int = 4) -> str:
    diff = difflib.unified_diff(
        want.splitlines(),
        got.splitlines(),
        fromfile=f"golden/{stage}",
        tofile=f"current/{stage}",
        lineterm="",
        n=context,
    )
    lines = list(diff)
    if len(lines) > 120:
        lines = lines[:120] + [f"... ({len(lines) - 120} more diff lines)"]
    return "\n".join(lines)


@pytest.mark.parametrize("config", sorted(CONFIGS))
@pytest.mark.parametrize("workload_name", workload_names())
def test_ir_matches_golden(workload_name, config, request):
    path = snapshot_path(workload_name, config)
    stages = capture_stages(workload_name, config)

    if request.config.getoption("--update-goldens"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_snapshot(stages))
        return

    if not path.exists():
        pytest.fail(
            f"missing golden snapshot {path.name}; generate with "
            f"`pytest tests/golden --update-goldens` and commit it"
        )
    golden = parse_snapshot(path.read_text())
    for stage in STAGES:
        want = golden.get(stage, "")
        got = stages[stage].rstrip("\n")
        if got != want:
            pytest.fail(
                f"{workload_name} [{config}] printed IR diverged from "
                f"golden at stage '{stage}':\n"
                + stage_diff(stage, want, got)
                + "\n\nIf this change is intended, run "
                "`pytest tests/golden --update-goldens` and commit "
                "the snapshot update.",
                pytrace=False,
            )

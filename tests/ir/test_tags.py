"""Unit tests for tags and tag sets."""

import pytest

from repro.ir.tags import Tag, TagKind, TagSet, scalar_tags

T1 = Tag("a", TagKind.GLOBAL)
T2 = Tag("b", TagKind.GLOBAL)
T3 = Tag("f.x", TagKind.LOCAL, owner="f")
ARR = Tag("arr", TagKind.GLOBAL, is_scalar=False)


class TestTag:
    def test_identity_by_fields(self):
        assert Tag("a", TagKind.GLOBAL) == T1
        assert Tag("a", TagKind.LOCAL) != T1

    def test_str(self):
        assert str(T3) == "f.x"

    def test_scalar_flag(self):
        assert T1.is_scalar
        assert not ARR.is_scalar


class TestTagSetConstruction:
    def test_empty(self):
        s = TagSet.empty()
        assert s.is_empty()
        assert not s
        assert len(s) == 0

    def test_of(self):
        s = TagSet.of(T1, T2)
        assert len(s) == 2
        assert T1 in s and T2 in s
        assert T3 not in s

    def test_universe(self):
        u = TagSet.universe()
        assert u.universal
        assert not u.is_empty()
        assert T1 in u  # everything is a member

    def test_from_iterable(self):
        s = TagSet.from_iterable([T1, T1, T2])
        assert len(s) == 2

    def test_singleton(self):
        s = TagSet.of(T1)
        assert s.is_singleton()
        assert s.the_tag() == T1

    def test_the_tag_rejects_non_singleton(self):
        with pytest.raises(ValueError):
            TagSet.of(T1, T2).the_tag()
        with pytest.raises(ValueError):
            TagSet.universe().the_tag()


class TestTagSetAlgebra:
    def test_union(self):
        s = TagSet.of(T1).union(TagSet.of(T2))
        assert set(s) == {T1, T2}

    def test_union_universe_absorbs(self):
        assert TagSet.of(T1).union(TagSet.universe()).universal
        assert TagSet.universe().union(TagSet.of(T1)).universal

    def test_union_with_empty_is_identity(self):
        s = TagSet.of(T1)
        assert s.union(TagSet.empty()) == s
        assert TagSet.empty().union(s) == s

    def test_intersect(self):
        a = TagSet.of(T1, T2)
        b = TagSet.of(T2, T3)
        assert set(a.intersect(b)) == {T2}

    def test_intersect_universe_is_identity(self):
        s = TagSet.of(T1, T2)
        assert s.intersect(TagSet.universe()) == s
        assert TagSet.universe().intersect(s) == s

    def test_without(self):
        s = TagSet.of(T1, T2).without([T1])
        assert set(s) == {T2}

    def test_without_on_universe_is_noop(self):
        assert TagSet.universe().without([T1]).universal

    def test_overlaps(self):
        assert TagSet.of(T1, T2).overlaps(TagSet.of(T2))
        assert not TagSet.of(T1).overlaps(TagSet.of(T2))
        assert TagSet.universe().overlaps(TagSet.of(T1))
        assert not TagSet.universe().overlaps(TagSet.empty())
        assert not TagSet.empty().overlaps(TagSet.universe())

    def test_materialize(self):
        m = TagSet.universe().materialize([T1, T2])
        assert set(m) == {T1, T2}
        s = TagSet.of(T3)
        assert s.materialize([T1]) == s  # finite sets unchanged

    def test_iteration_of_universe_raises(self):
        with pytest.raises(ValueError):
            list(TagSet.universe())
        with pytest.raises(ValueError):
            len(TagSet.universe())


class TestScalarTags:
    def test_filters_aggregates(self):
        assert scalar_tags([T1, ARR, T3]) == frozenset({T1, T3})


class TestDisplay:
    def test_str_sorted(self):
        assert str(TagSet.of(T2, T1)) == "[a b]"

    def test_str_universe(self):
        assert str(TagSet.universe()) == "[*]"

"""Unit tests for the verifier and the CFG utilities."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Branch,
    Function,
    IRBuilder,
    Jump,
    LoadI,
    Mov,
    Phi,
    Ret,
    VReg,
    verify_function,
)
from repro.ir.cfg import (
    edge_list,
    postorder,
    predecessors,
    remove_unreachable_blocks,
    reverse_postorder,
    split_critical_edges,
)


def diamond() -> Function:
    """entry -> (left | right) -> join -> ret"""
    func = Function("d")
    b = IRBuilder(func)
    entry = b.set_block(func.new_block(label="entry"))
    cond = b.loadi(1)
    left = func.new_block(label="left")
    right = func.new_block(label="right")
    join = func.new_block(label="join")
    b.cbr(cond, left, right)
    b.set_block(left)
    b.jmp(join)
    b.set_block(right)
    b.jmp(join)
    b.set_block(join)
    b.ret()
    assert entry.label == func.entry
    return func


class TestVerifier:
    def test_accepts_diamond(self):
        verify_function(diamond())

    def test_rejects_missing_terminator(self):
        func = Function("f")
        block = func.new_block()
        block.append(LoadI(func.new_vreg(), 1))
        with pytest.raises(IRError, match="terminator"):
            verify_function(func)

    def test_rejects_empty_block(self):
        func = Function("f")
        func.new_block()
        with pytest.raises(IRError, match="empty"):
            verify_function(func)

    def test_rejects_unknown_target(self):
        func = Function("f")
        func.new_block().append(Jump("nowhere"))
        with pytest.raises(IRError, match="unknown block"):
            verify_function(func)

    def test_rejects_mid_block_terminator(self):
        func = Function("f")
        block = func.new_block(label="A")
        block.instrs = [Ret(), Ret()]
        with pytest.raises(IRError, match="not last"):
            verify_function(func)

    def test_rejects_phi_after_non_phi(self):
        func = Function("f")
        block = func.new_block(label="A")
        block.instrs = [
            LoadI(func.new_vreg(), 1),
            Phi(func.new_vreg(), {}),
            Ret(),
        ]
        with pytest.raises(IRError, match="phi"):
            verify_function(func)

    def test_rejects_phi_with_wrong_incoming(self):
        func = diamond()
        join = func.block("join")
        phi = Phi(func.new_vreg(), {"left": VReg(0)})  # missing "right"
        join.instrs.insert(0, phi)
        with pytest.raises(IRError, match="incoming"):
            verify_function(func)

    def test_ssa_mode_rejects_double_def(self):
        func = Function("f")
        block = func.new_block()
        r = func.new_vreg()
        block.instrs = [LoadI(r, 1), LoadI(r, 2), Ret()]
        verify_function(func)  # fine in non-SSA mode
        with pytest.raises(IRError, match="defined in both"):
            verify_function(func, ssa=True)


class TestCFG:
    def test_predecessors(self):
        func = diamond()
        preds = predecessors(func)
        assert sorted(preds["join"]) == ["left", "right"]
        assert preds[func.entry] == []

    def test_postorder_ends_at_entry(self):
        func = diamond()
        order = postorder(func)
        assert order[-1] == func.entry
        assert set(order) == set(func.blocks)

    def test_reverse_postorder_starts_at_entry(self):
        func = diamond()
        order = reverse_postorder(func)
        assert order[0] == func.entry
        # join must come after both left and right
        assert order.index("join") > order.index("left")
        assert order.index("join") > order.index("right")

    def test_edge_list(self):
        func = diamond()
        edges = set(edge_list(func))
        assert ("left", "join") in edges
        assert ("right", "join") in edges

    def test_remove_unreachable(self):
        func = diamond()
        dead = func.new_block("dead")
        dead.append(Jump("join"))
        removed = remove_unreachable_blocks(func)
        assert removed == [dead.label]
        assert dead.label not in func.blocks

    def test_remove_unreachable_prunes_phis(self):
        func = diamond()
        dead = func.new_block("dead")
        dead.append(Jump("join"))
        phi = Phi(func.new_vreg(), {"left": VReg(0), "right": VReg(0), dead.label: VReg(0)})
        func.block("join").instrs.insert(0, phi)
        remove_unreachable_blocks(func)
        assert set(phi.incoming) == {"left", "right"}

    def test_split_critical_edges(self):
        # A -cbr-> (B, C); B also reached from D: edge A->B is critical
        func = Function("f")
        b = IRBuilder(func)
        a = b.set_block(func.new_block(label="A"))
        cond = b.loadi(1)
        bb = func.new_block(label="B")
        cc = func.new_block(label="C")
        b.cbr(cond, bb, cc)
        cc.append(Branch(cond, "B", "D"))
        dd = func.new_block(label="D")
        dd.append(Jump("B"))
        bb.append(Ret())
        count = split_critical_edges(func)
        assert count >= 2  # A->B and C->B are critical
        verify_function(func)
        # B now has only single-successor predecessors
        preds = predecessors(func)
        for pred in preds["B"]:
            assert len(func.block(pred).successors()) == 1

"""Unit tests for IL instruction classes."""

import pytest

from repro.ir import (
    BinOp,
    Branch,
    Call,
    CLoad,
    Jump,
    LoadAddr,
    LoadI,
    MemLoad,
    MemStore,
    Mov,
    Nop,
    Opcode,
    Phi,
    Ret,
    ScalarLoad,
    ScalarStore,
    Tag,
    TagKind,
    TagSet,
    UnOp,
    VReg,
    branch_targets,
    is_memory_load,
    is_memory_op,
    is_memory_store,
    retarget,
)

R0, R1, R2 = VReg(0), VReg(1), VReg(2)
T = Tag("g", TagKind.GLOBAL)


class TestVReg:
    def test_equality_ignores_hint(self):
        assert VReg(3, "x") == VReg(3, "y")
        assert hash(VReg(3, "x")) == hash(VReg(3, "y"))

    def test_distinct_ids_differ(self):
        assert VReg(3) != VReg(4)

    def test_str_uses_hint(self):
        assert str(VReg(5, "count")) == "%count5"
        assert str(VReg(5)) == "%r5"


class TestUsesAndDefs:
    @pytest.mark.parametrize(
        "instr,uses,dest",
        [
            (BinOp(Opcode.ADD, R0, R1, R2), (R1, R2), R0),
            (UnOp(Opcode.NEG, R0, R1), (R1,), R0),
            (LoadI(R0, 5), (), R0),
            (Mov(R0, R1), (R1,), R0),
            (LoadAddr(R0, T), (), R0),
            (CLoad(R0, T), (), R0),
            (ScalarLoad(R0, T), (), R0),
            (ScalarStore(R1, T), (R1,), None),
            (MemLoad(R0, R1, TagSet.of(T)), (R1,), R0),
            (MemStore(R0, R1, TagSet.of(T)), (R0, R1), None),
            (Jump("L"), (), None),
            (Branch(R0, "A", "B"), (R0,), None),
            (Ret(R0), (R0,), None),
            (Ret(), (), None),
            (Nop(), (), None),
        ],
    )
    def test_uses_defs(self, instr, uses, dest):
        assert instr.uses() == uses
        assert instr.dest == dest

    def test_call_uses(self):
        call = Call(R0, "f", [R1, R2])
        assert call.uses() == (R1, R2)
        assert call.dest == R0

    def test_indirect_call_uses_callee_reg(self):
        call = Call(None, None, [R1], callee_reg=R2)
        assert call.uses() == (R2, R1)
        assert call.is_indirect()

    def test_call_requires_target(self):
        with pytest.raises(ValueError):
            Call(None, None, [])

    def test_phi_uses(self):
        phi = Phi(R0, {"A": R1, "B": R2})
        assert set(phi.uses()) == {R1, R2}
        assert phi.dest == R0


class TestReplaceUses:
    def test_binop(self):
        instr = BinOp(Opcode.ADD, R0, R1, R2)
        instr.replace_uses({R1: R2})
        assert instr.uses() == (R2, R2)

    def test_replace_does_not_touch_dest(self):
        instr = Mov(R0, R1)
        instr.replace_uses({R0: R2, R1: R2})
        assert instr.dst == R0
        assert instr.src == R2

    def test_phi_replace(self):
        phi = Phi(R0, {"A": R1})
        phi.replace_uses({R1: R2})
        assert phi.incoming == {"A": R2}

    def test_memstore_replaces_both(self):
        instr = MemStore(R0, R1, TagSet.of(T))
        instr.replace_uses({R0: R2, R1: R2})
        assert instr.uses() == (R2, R2)


class TestOpcodeValidation:
    def test_binop_rejects_unary_opcode(self):
        with pytest.raises(ValueError):
            BinOp(Opcode.NEG, R0, R1, R2)

    def test_unop_rejects_binary_opcode(self):
        with pytest.raises(ValueError):
            UnOp(Opcode.ADD, R0, R1)


class TestMemoryClassification:
    def test_loads(self):
        assert is_memory_load(ScalarLoad(R0, T))
        assert is_memory_load(CLoad(R0, T))
        assert is_memory_load(MemLoad(R0, R1, TagSet.universe()))
        assert not is_memory_load(LoadI(R0, 1))  # immediates are not loads

    def test_stores(self):
        assert is_memory_store(ScalarStore(R0, T))
        assert is_memory_store(MemStore(R0, R1, TagSet.universe()))
        assert not is_memory_store(ScalarLoad(R0, T))

    def test_memory_op(self):
        assert is_memory_op(ScalarLoad(R0, T))
        assert not is_memory_op(Mov(R0, R1))


class TestTagSets:
    def test_scalar_ops_singleton(self):
        assert set(ScalarLoad(R0, T).tag_set()) == {T}
        assert set(ScalarStore(R0, T).tag_set()) == {T}

    def test_call_tag_set_is_mod_union_ref(self):
        t2 = Tag("h", TagKind.GLOBAL)
        call = Call(None, "f", [], mod=TagSet.of(T), ref=TagSet.of(t2))
        assert set(call.tag_set()) == {T, t2}

    def test_call_defaults_universal(self):
        call = Call(None, "f", [])
        assert call.mod.universal and call.ref.universal


class TestControlFlow:
    def test_branch_targets(self):
        assert branch_targets(Jump("X")) == ("X",)
        assert branch_targets(Branch(R0, "A", "B")) == ("A", "B")
        assert branch_targets(Branch(R0, "A", "A")) == ("A",)
        assert branch_targets(Ret()) == ()

    def test_retarget_jump(self):
        j = Jump("A")
        retarget(j, "A", "B")
        assert j.target == "B"

    def test_retarget_branch_both_edges(self):
        b = Branch(R0, "A", "A")
        retarget(b, "A", "B")
        assert b.if_true == "B" and b.if_false == "B"

    def test_terminators(self):
        assert Jump("L").is_terminator()
        assert Branch(R0, "A", "B").is_terminator()
        assert Ret().is_terminator()
        assert not Call(None, "f", []).is_terminator()


class TestCopy:
    @pytest.mark.parametrize(
        "instr",
        [
            BinOp(Opcode.MUL, R0, R1, R2),
            UnOp(Opcode.I2F, R0, R1),
            LoadI(R0, 2.5),
            Mov(R0, R1),
            LoadAddr(R0, T, 8),
            ScalarLoad(R0, T),
            ScalarStore(R1, T),
            MemLoad(R0, R1, TagSet.of(T)),
            MemStore(R0, R1, TagSet.universe()),
            Jump("L"),
            Branch(R0, "A", "B"),
            Ret(R0),
            Call(R0, "f", [R1], site_id=3),
            Phi(R0, {"A": R1}),
            Nop(),
        ],
    )
    def test_copy_is_equal_but_distinct(self, instr):
        dup = instr.copy()
        assert dup is not instr
        assert str(dup) == str(instr)
        assert type(dup) is type(instr)

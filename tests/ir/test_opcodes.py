"""Table 1 — the memory-opcode hierarchy, as opcode-set invariants."""

from repro.ir.opcodes import (
    BINARY_OPS,
    COMMUTATIVE_OPS,
    COMPARISON_OPS,
    MEMORY_LOAD_OPS,
    MEMORY_OPS,
    MEMORY_STORE_OPS,
    SWAPPED_COMPARISON,
    TERMINATOR_OPS,
    UNARY_OPS,
    Opcode,
)


class TestTable1Hierarchy:
    def test_loads_per_table1(self):
        """Table 1's load column: cLoad, sLoad, and the general load are
        memory references; iLoad (our loadi) is an immediate, not a load."""
        assert MEMORY_LOAD_OPS == {Opcode.CLOAD, Opcode.SLOAD, Opcode.LOAD}
        assert Opcode.LOADI not in MEMORY_LOAD_OPS

    def test_stores_per_table1(self):
        assert MEMORY_STORE_OPS == {Opcode.SSTORE, Opcode.STORE}

    def test_memory_ops_partition(self):
        assert MEMORY_OPS == MEMORY_LOAD_OPS | MEMORY_STORE_OPS
        assert not MEMORY_LOAD_OPS & MEMORY_STORE_OPS


class TestOpcodeFamilies:
    def test_families_disjoint(self):
        families = [BINARY_OPS, UNARY_OPS, MEMORY_OPS, TERMINATOR_OPS]
        for i, a in enumerate(families):
            for b in families[i + 1:]:
                assert not a & b

    def test_comparisons_are_binary(self):
        assert COMPARISON_OPS <= BINARY_OPS

    def test_commutative_ops_are_binary(self):
        assert COMMUTATIVE_OPS <= BINARY_OPS

    def test_subtraction_and_shifts_not_commutative(self):
        for op in (Opcode.SUB, Opcode.DIV, Opcode.MOD, Opcode.SHL, Opcode.SHR):
            assert op not in COMMUTATIVE_OPS

    def test_terminators(self):
        assert TERMINATOR_OPS == {Opcode.JMP, Opcode.CBR, Opcode.RET}
        assert Opcode.CALL not in TERMINATOR_OPS  # the paper's JSR falls through

    def test_every_opcode_in_some_known_family(self):
        structural = {Opcode.LOADI, Opcode.MOV, Opcode.LA, Opcode.CALL,
                      Opcode.PHI, Opcode.NOP}
        covered = (BINARY_OPS | UNARY_OPS | MEMORY_OPS | TERMINATOR_OPS
                   | structural)
        assert covered == set(Opcode)

    def test_mnemonics_stable(self):
        assert str(Opcode.SLOAD) == "sload"
        assert str(Opcode.CBR) == "cbr"


class TestSwappedComparisons:
    def test_swap_is_involutive(self):
        for op, swapped in SWAPPED_COMPARISON.items():
            assert SWAPPED_COMPARISON[swapped] == op

    def test_equality_fixed_points(self):
        assert SWAPPED_COMPARISON[Opcode.CMP_EQ] == Opcode.CMP_EQ
        assert SWAPPED_COMPARISON[Opcode.CMP_NE] == Opcode.CMP_NE

    def test_orderings_flip(self):
        assert SWAPPED_COMPARISON[Opcode.CMP_LT] == Opcode.CMP_GT
        assert SWAPPED_COMPARISON[Opcode.CMP_LE] == Opcode.CMP_GE

    def test_semantics_of_swap(self):
        from repro.interp.machine import _binop

        for a, b in [(1, 2), (2, 1), (3, 3)]:
            for op, swapped in SWAPPED_COMPARISON.items():
                assert _binop(op, a, b) == _binop(swapped, b, a)

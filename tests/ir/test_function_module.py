"""Unit tests for basic blocks, functions, and modules."""

import pytest

from repro.errors import IRError
from repro.ir import (
    BasicBlock,
    Branch,
    Function,
    GlobalVar,
    IRBuilder,
    Jump,
    LoadI,
    Module,
    Mov,
    Phi,
    Ret,
    Tag,
    TagKind,
    VReg,
)


def two_block_function() -> Function:
    func = Function("f")
    b = IRBuilder(func)
    entry = b.start_block()
    one = b.loadi(1)
    exit_block = func.new_block()
    b.cbr(one, exit_block, exit_block)
    b.set_block(exit_block)
    b.ret(one)
    return func


class TestBasicBlock:
    def test_append_to_terminated_block_fails(self):
        block = BasicBlock("B")
        block.append(Ret())
        with pytest.raises(IRError):
            block.append(Ret())

    def test_successors_from_terminator(self):
        block = BasicBlock("B", [Branch(VReg(0), "X", "Y")])
        assert block.successors() == ("X", "Y")

    def test_unterminated_block(self):
        block = BasicBlock("B", [LoadI(VReg(0), 1)])
        assert block.terminator is None
        assert block.successors() == ()
        assert not block.is_terminated()

    def test_phis_prefix(self):
        block = BasicBlock("B")
        p1 = Phi(VReg(0), {})
        block.instrs = [p1, LoadI(VReg(1), 0), Jump("X")]
        assert block.phis() == [p1]
        assert block.first_non_phi_index() == 1

    def test_body_excludes_terminator(self):
        load = LoadI(VReg(0), 1)
        block = BasicBlock("B", [load, Ret()])
        assert block.body() == [load]


class TestFunction:
    def test_first_block_is_entry(self):
        func = Function("f")
        block = func.new_block()
        assert func.entry == block.label

    def test_duplicate_label_rejected(self):
        func = Function("f")
        func.new_block(label="B0")
        with pytest.raises(IRError):
            func.new_block(label="B0")

    def test_new_vreg_ids_increase(self):
        func = Function("f")
        a = func.new_vreg()
        b = func.new_vreg()
        assert b.id == a.id + 1

    def test_vregs_start_above_params(self):
        func = Function("f", params=[VReg(0), VReg(1)])
        assert func.new_vreg().id >= 2

    def test_reserve_vreg_ids(self):
        func = Function("f")
        func.reserve_vreg_ids(100)
        assert func.new_vreg().id == 101

    def test_max_vreg_id(self):
        func = two_block_function()
        assert func.max_vreg_id() == func.new_vreg().id - 1

    def test_cannot_remove_entry(self):
        func = Function("f")
        func.new_block(label="B0")
        with pytest.raises(IRError):
            func.remove_block("B0")

    def test_unknown_block_lookup(self):
        func = Function("f")
        with pytest.raises(IRError):
            func.block("nope")


class TestSplitEdge:
    def test_split_jump_edge(self):
        func = Function("f")
        a = func.new_block(label="A")
        b_blk = func.new_block(label="B")
        a.append(Jump("B"))
        b_blk.append(Ret())
        mid = func.split_edge("A", "B")
        assert a.successors() == (mid.label,)
        assert mid.successors() == ("B",)

    def test_split_branch_edge_updates_phi(self):
        func = Function("f")
        a = func.new_block(label="A")
        b_blk = func.new_block(label="B")
        c = func.new_block(label="C")
        r = func.new_vreg()
        a.append(Branch(r, "B", "C"))
        phi = Phi(func.new_vreg(), {"A": r})
        b_blk.instrs = [phi, Ret()]
        c.append(Ret())
        mid = func.split_edge("A", "B")
        assert phi.incoming == {mid.label: r}
        assert a.successors() == (mid.label, "C")

    def test_split_missing_edge_fails(self):
        func = Function("f")
        a = func.new_block(label="A")
        a.append(Ret())
        func.new_block(label="B").append(Ret())
        with pytest.raises(IRError):
            func.split_edge("A", "B")


class TestModule:
    def test_duplicate_function_rejected(self):
        module = Module()
        module.add_function(Function("f"))
        with pytest.raises(IRError):
            module.add_function(Function("f"))

    def test_duplicate_global_rejected(self):
        module = Module()
        var = GlobalVar(Tag("g", TagKind.GLOBAL), size=4, elem_size=4)
        module.add_global(var)
        with pytest.raises(IRError):
            module.add_global(
                GlobalVar(Tag("g", TagKind.GLOBAL), size=4, elem_size=4)
            )

    def test_string_interning(self):
        module = Module()
        a = module.add_string("hi")
        b = module.add_string("hi")
        c = module.add_string("ho")
        assert a is b
        assert a.tag != c.tag

    def test_heap_tags_by_site(self):
        module = Module()
        s1 = module.new_call_site()
        s2 = module.new_call_site()
        assert s1 != s2
        t1 = module.heap_tag_for_site(s1)
        assert module.heap_tag_for_site(s1) == t1
        assert module.heap_tag_for_site(s2) != t1
        assert not t1.is_scalar

    def test_memory_tags_covers_globals_locals_heap(self):
        module = Module()
        gvar = GlobalVar(Tag("g", TagKind.GLOBAL), size=4, elem_size=4)
        module.add_global(gvar)
        func = Function("f")
        local = Tag("f.x", TagKind.LOCAL, owner="f")
        func.local_tags.append(local)
        module.add_function(func)
        heap = module.heap_tag_for_site(module.new_call_site())
        tags = set(module.memory_tags())
        assert {gvar.tag, local, heap} <= tags

    def test_addressable_respects_address_taken(self):
        module = Module()
        gvar = GlobalVar(Tag("g", TagKind.GLOBAL), size=4, elem_size=4)
        module.add_global(gvar)
        assert gvar.tag not in module.addressable_tags()
        module.address_taken.add(gvar.tag)
        assert gvar.tag in module.addressable_tags()

"""Round-trip tests: print -> parse -> print must be a fixpoint, and the
parsed module must behave identically under the interpreter."""

import pytest

from repro.errors import IRError
from repro.frontend import compile_c
from repro.interp import MachineOptions, run_module
from repro.ir import format_module, verify_module
from repro.ir.parser import parse_module
from repro.pipeline import PipelineOptions, compile_source
from repro.workloads import get_workload

SOURCES = {
    "scalars": r"""
        int g = 3;
        int main(void) {
            int i;
            for (i = 0; i < 10; i++) { g += i; }
            printf("%d\n", g);
            return 0;
        }
    """,
    "pointers": r"""
        int data[8];
        int *p;
        int pick(int *q, int n) { return q[n]; }
        int main(void) {
            int i;
            p = data;
            for (i = 0; i < 8; i++) { data[i] = i * i; }
            printf("%d %d\n", pick(p, 3), *p);
            return 0;
        }
    """,
    "floats_and_calls": r"""
        double acc;
        int main(void) {
            int i;
            for (i = 1; i <= 5; i++) { acc += sqrt((double) i); }
            printf("%.3f\n", acc);
            return 0;
        }
    """,
    "locals_addr_taken": r"""
        void bump(int *x) { *x = *x + 1; }
        int main(void) {
            int n;
            n = 40;
            bump(&n);
            bump(&n);
            printf("%d\n", n);
            return 0;
        }
    """,
}


@pytest.mark.parametrize("name", sorted(SOURCES))
class TestRoundTrip:
    def test_print_parse_print_fixpoint(self, name):
        module = compile_c(SOURCES[name])
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text

    def test_parsed_module_runs_identically(self, name):
        module = compile_c(SOURCES[name])
        expected = run_module(module, options=MachineOptions())
        fresh = compile_c(SOURCES[name])
        reparsed = parse_module(format_module(fresh))
        actual = run_module(reparsed, options=MachineOptions())
        assert actual.output == expected.output
        assert actual.exit_code == expected.exit_code

    def test_optimized_module_round_trips(self, name):
        result = compile_source(SOURCES[name], PipelineOptions())
        text = format_module(result.module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text


class TestWorkloadRoundTrip:
    @pytest.mark.parametrize("workload", ["allroots", "indent", "bc"])
    def test_workload_ir_round_trips(self, workload):
        w = get_workload(workload)
        module = compile_c(w.source, name=w.name, defines=w.defines)
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text


class TestHandWritten:
    def test_minimal_function(self):
        text = """
func main() {
B0: ; entry
    %r0 = loadi 41
    %r1 = loadi 1
    %r2 = add %r0, %r1
    ret %r2
}
"""
        module = parse_module(text)
        assert run_module(module).exit_code == 42

    def test_scalar_memory_ops(self):
        text = """
global g size=4
func main() {
B0: ; entry
    %r0 = loadi 7
    sstore %r0 -> [g]
    %r1 = sload [g]
    ret %r1
}
"""
        module = parse_module(text)
        assert run_module(module).exit_code == 7

    def test_control_flow_and_calls(self):
        text = """
global n size=4 init={0: 3}
func double_it(%x0) {
B0: ; entry
    %r1 = add %x0, %x0
    ret %r1
}

func main() {
B0: ; entry
    %r0 = sload [n]
    cbr %r0 ? T1 : F2
T1:
    %r1 = call double_it(%r0) mod=[] ref=[]
    ret %r1
F2:
    %r2 = loadi -1
    ret %r2
}
"""
        module = parse_module(text)
        assert run_module(module).exit_code == 6

    def test_bad_syntax_rejected(self):
        with pytest.raises(IRError):
            parse_module("func broken( {\n}")
        with pytest.raises(IRError):
            parse_module("func f() {\nB0: ; entry\n    %r0 = frobnicate 1\n}")
        with pytest.raises(IRError):
            parse_module("func f() {\n    %r0 = loadi 1\n}")  # before label

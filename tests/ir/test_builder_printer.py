"""Tests for the IR builder and the textual printer."""

import pytest

from repro.errors import IRError
from repro.frontend import compile_c
from repro.ir import (
    Function,
    IRBuilder,
    Opcode,
    Tag,
    TagKind,
    TagSet,
    format_function,
    format_module,
    verify_function,
)

G = Tag("g", TagKind.GLOBAL)


class TestBuilder:
    def test_requires_block(self):
        func = Function("f")
        b = IRBuilder(func)
        with pytest.raises(IRError):
            b.loadi(1)

    def test_emits_in_order(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(1)
        y = b.loadi(2)
        total = b.add(x, y)
        b.ret(total)
        ops = [type(i).__name__ for i in func.entry_block().instrs]
        assert ops == ["LoadI", "LoadI", "BinOp", "Ret"]
        verify_function(func)

    def test_all_memory_helpers(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        addr = b.la(G, offset=8)
        v = b.load(addr, TagSet.of(G))
        b.store(v, addr, TagSet.of(G))
        s = b.sload(G)
        b.sstore(s, G)
        c = b.cload(G)
        b.ret(c)
        verify_function(func)

    def test_branch_by_block_or_label(self):
        func = Function("f")
        b = IRBuilder(func)
        entry = b.start_block()
        cond = b.loadi(1)
        t = func.new_block(label="T")
        f = func.new_block(label="F")
        b.cbr(cond, t, "F")
        b.set_block(t)
        b.ret()
        b.set_block(f)
        b.ret()
        verify_function(func)
        assert entry.successors() == ("T", "F")

    def test_call_with_and_without_result(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        none = b.call("printf")
        some = b.call("rand", returns=True)
        assert none is None
        assert some is not None
        b.ret(some)
        verify_function(func)

    def test_binop_hint_used(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(1, hint="x")
        assert "x" in str(x)


class TestPrinter:
    def test_function_format_contains_blocks_and_entry_marker(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        b.ret()
        text = format_function(func)
        assert "func f(" in text
        assert "; entry" in text
        assert "ret" in text

    def test_module_format_round_trips_all_sections(self):
        src = r"""
        int g = 3;
        const int limit = 10;
        int main(void) {
            printf("hello %d\n", g + limit);
            return 0;
        }
        """
        module = compile_c(src)
        text = format_module(module)
        assert "; module" in text
        assert "global g size=4 init={0: 3}" in text
        assert "global const limit" in text
        assert "string @str0" in text
        assert "func main()" in text
        assert text.endswith("\n")

    def test_tag_sets_printed_sorted(self):
        src = r"""
        int a;
        int b;
        int main(void) {
            int *p;
            if (a) { p = &a; } else { p = &b; }
            return *p;
        }
        """
        module = compile_c(src)
        from repro.analysis.modref import run_modref

        run_modref(module)
        text = format_module(module)
        assert "[a b]" in text

    def test_local_tags_listed(self):
        src = r"""
        int main(void) {
            int x;
            int *p;
            p = &x;
            return *p;
        }
        """
        module = compile_c(src)
        text = format_module(module)
        assert "; local tags: main.x" in text

    def test_every_instruction_has_stable_str(self):
        """str() of every instruction in a realistic module is non-empty
        and mentions its opcode."""
        src = r"""
        double d;
        int arr[3];
        int f(int x) { return x + 1; }
        int main(void) {
            int i;
            for (i = 0; i < 3; i++) { arr[i] = f(i); }
            d = 1.5 * (double) arr[2];
            printf("%f\n", d);
            return 0;
        }
        """
        module = compile_c(src)
        for func in module.functions.values():
            for instr in func.instructions():
                assert str(instr).strip()

"""The ``repro fuzz`` subcommand."""

import pytest

from repro.cli import _parse_fuzz_seed, main


class TestSeedParsing:
    def test_decimal_passes_through(self):
        assert _parse_fuzz_seed("0") == 0
        assert _parse_fuzz_seed("12345") == 12345

    def test_string_seed_hashes_deterministically(self):
        sha = "9710245deadbeefcafe0123456789abcdef01234"
        first = _parse_fuzz_seed(sha)
        assert first == _parse_fuzz_seed(sha)
        assert 0 <= first < 2**63
        assert first != _parse_fuzz_seed(sha + "x")


class TestFuzzCommand:
    @pytest.mark.slow
    def test_clean_smoke_run_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--programs", "2",
                "--seed", "0",
                "--budget", "1e9",
                "--artifacts", str(tmp_path / "artifacts"),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "2 program(s)" in captured.out
        assert "0 DIVERGENT" in captured.out

    def test_string_seed_accepted(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--programs", "1",
                "--seed", "some-git-sha",
                "--budget", "1e9",
                "--artifacts", str(tmp_path / "artifacts"),
            ]
        )
        assert code == 0
        assert "1 program(s)" in capsys.readouterr().out

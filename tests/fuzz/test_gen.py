"""The random program generator: determinism, validity, and shape."""

from dataclasses import replace

from repro.frontend import compile_c
from repro.fuzz import generate_program
from repro.fuzz.gen import GenOptions

SMOKE_SEEDS = range(25)


class TestDeterminism:
    def test_same_seed_same_source(self):
        for seed in (0, 7, 123456789):
            assert (
                generate_program(seed).source == generate_program(seed).source
            )

    def test_distinct_seeds_distinct_sources(self):
        sources = {generate_program(seed).source for seed in SMOKE_SEEDS}
        assert len(sources) == len(SMOKE_SEEDS)

    def test_name_embeds_seed(self):
        assert generate_program(42).name == "fuzz-42"


class TestValidity:
    def test_every_smoke_seed_compiles(self):
        for seed in SMOKE_SEEDS:
            program = generate_program(seed)
            module = compile_c(program.source, name=program.name)
            assert "main" in module.functions, program.source

    def test_deep_nesting_stays_within_counter_pool(self):
        # hammer the shapes most likely to exhaust the loop-counter pool:
        # deep nesting with many statements per block
        options = GenOptions(max_loop_depth=5, max_stmts_per_block=8)
        for seed in range(15):
            program = generate_program(seed, options)
            compile_c(program.source, name=program.name)

    def test_no_unguarded_division(self):
        # every generated / and % is wrapped in a "!= 0 ?" guard
        for seed in SMOKE_SEEDS:
            for line in generate_program(seed).source.splitlines():
                for op in (" / ", " % "):
                    if op in line:
                        assert "!= 0 ?" in line, line


class TestShape:
    def test_programs_are_loop_heavy(self):
        with_loops = sum(
            1
            for seed in SMOKE_SEEDS
            if any(
                kw in generate_program(seed).source
                for kw in ("for (", "while (")
            )
        )
        assert with_loops == len(SMOKE_SEEDS)

    def test_most_programs_take_addresses(self):
        with_addr = sum(
            1 for seed in SMOKE_SEEDS if "&" in generate_program(seed).source
        )
        assert with_addr >= len(SMOKE_SEEDS) // 2

    def test_options_change_shape(self):
        small = replace(GenOptions(), max_loop_depth=1, max_stmts_per_block=2)
        assert (
            generate_program(3, small).source != generate_program(3).source
        )

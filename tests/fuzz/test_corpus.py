"""The regression corpus: every file runs the full differential oracle.

``tests/corpus/*.c`` holds hand-written alias/MOD/REF edge cases plus
minimized fuzzer finds.  Each is judged by the same multi-level oracle
the fuzzer uses; a file whose name starts with ``trap-`` is *expected*
to trap (consistently, in every cell) — everything else must pass clean.
"""

from pathlib import Path

import pytest

from repro.fuzz import run_oracle
from repro.fuzz.gen import FuzzProgram
from repro.fuzz.oracle import OracleConfig

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.c"))

_CONFIG = OracleConfig(max_steps=10_000_000)


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 8


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_program_has_no_divergence(path):
    program = FuzzProgram(seed=-1, source=path.read_text())
    report = run_oracle(program, _CONFIG)
    expected = "trap" if path.stem.startswith("trap-") else "ok"
    assert report.status == expected, (
        f"{path.name}: {report.status}; "
        + "; ".join(d.message for d in report.divergences)
    )

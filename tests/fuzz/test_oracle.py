"""The differential oracle: classification rules and end-to-end runs."""

import pytest

from repro.fuzz import generate_program, run_oracle
from repro.fuzz.gen import FuzzProgram
from repro.fuzz.oracle import (
    OracleConfig,
    build_oracle_specs,
    classify_outcomes,
    config_with_broken_promotion,
    make_divergence_predicate,
    o0_options,
    write_divergence_artifact,
)
from repro.interp import Counters
from repro.runner.scheduler import CellData, CellFailure

#: a seed whose program the unsafe_ignore_call_ambiguity miscompile
#: visibly breaks (a loop stores a global a callee reads)
MISCOMPILED_SEED = 4


def _data(variant, output="x 1\n", exit_code=0, **counter_overrides):
    counters = Counters(
        total_ops=100,
        loads=10,
        stores=5,
        scalar_loads=6,
        general_loads=4,
        scalar_stores=3,
        general_stores=2,
        branches=7,
    )
    for name, value in counter_overrides.items():
        setattr(counters, name, value)
    return CellData(
        workload="p",
        variant=variant,
        counters=counters,
        exit_code=exit_code,
        output=output,
        seconds=0.0,
    )


def _failure(variant, message="InterpTrap: integer division by zero"):
    return CellFailure(
        workload="p", variant=variant, kind="crash", message=message, attempts=1
    )


def _program():
    return FuzzProgram(seed=-1, source="int main(void) { return 0; }\n")


class TestClassification:
    def test_all_agree_is_ok(self):
        outcomes = {v: _data(v) for v in ("O0+threaded", "O0+simple")}
        report = classify_outcomes(_program(), outcomes)
        assert report.status == "ok"
        assert not report.divergences

    def test_consistent_trap_is_explained(self):
        outcomes = {v: _failure(v) for v in ("O0+threaded", "full+threaded")}
        report = classify_outcomes(_program(), outcomes)
        assert report.status == "trap"
        assert report.ok

    def test_mixed_crash_and_success_diverges(self):
        outcomes = {"O0+threaded": _data("O0+threaded"),
                    "full+threaded": _failure("full+threaded")}
        report = classify_outcomes(_program(), outcomes)
        assert report.status == "divergent"
        assert report.divergences[0].kind == "crash-divergence"

    def test_different_trap_messages_diverge(self):
        outcomes = {
            "O0+threaded": _failure("O0+threaded", "InterpTrap: a"),
            "full+threaded": _failure("full+threaded", "InterpTrap: b"),
        }
        report = classify_outcomes(_program(), outcomes)
        assert report.status == "divergent"
        assert report.divergences[0].kind == "crash-divergence"

    def test_output_mismatch_diverges(self):
        outcomes = {
            "O0+threaded": _data("O0+threaded", output="x 1\n"),
            "full+threaded": _data("full+threaded", output="x 2\n"),
        }
        report = classify_outcomes(_program(), outcomes)
        assert any(d.kind == "output-divergence" for d in report.divergences)

    def test_exit_code_mismatch_diverges(self):
        outcomes = {
            "O0+threaded": _data("O0+threaded", exit_code=0),
            "full+threaded": _data("full+threaded", exit_code=3),
        }
        report = classify_outcomes(_program(), outcomes)
        assert any(d.kind == "output-divergence" for d in report.divergences)

    def test_engine_counter_mismatch_diverges(self):
        outcomes = {
            "full+threaded": _data("full+threaded"),
            "full+simple": _data("full+simple", total_ops=101),
        }
        report = classify_outcomes(_program(), outcomes)
        assert any(d.kind == "engine-divergence" for d in report.divergences)

    def test_engine_divergence_names_the_pair(self):
        outcomes = {
            "full+threaded": _data("full+threaded"),
            "full+simple": _data("full+simple"),
            "full+tier2": _data("full+tier2", total_ops=101),
        }
        report = classify_outcomes(_program(), outcomes)
        d = next(
            d for d in report.divergences if d.kind == "engine-divergence"
        )
        assert d.detail["engines"] == ["threaded", "tier2"]
        assert d.detail["fields"] == ["total_ops"]
        assert "tier2" in d.message and "threaded" in d.message

    def test_counter_invariant_violation_diverges(self):
        outcomes = {"full+threaded": _data("full+threaded", scalar_loads=999)}
        report = classify_outcomes(_program(), outcomes)
        assert any(d.kind == "counter-invariant" for d in report.divergences)

    def test_promotion_traffic_growth_is_advisory(self):
        # more memory ops under "full" than "full-nopromo" warns, not fails
        outcomes = {
            "full-nopromo+threaded": _data(
                "full-nopromo+threaded", loads=4, stores=2,
                scalar_loads=2, general_loads=2,
                scalar_stores=1, general_stores=1,
            ),
            "full+threaded": _data("full+threaded"),
        }
        report = classify_outcomes(_program(), outcomes)
        assert report.status == "ok"
        assert report.warnings


class TestEndToEnd:
    def test_specs_cover_the_matrix(self):
        config = OracleConfig()
        specs = build_oracle_specs("p", "int main(void){return 0;}", config)
        assert len(specs) == len(config.levels) * len(config.engines)
        assert all(spec.options.verify_each_stage for spec in specs)

    def test_matrix_includes_all_three_engines(self):
        config = OracleConfig()
        assert set(config.engines) == {"simple", "threaded", "tier2"}
        specs = build_oracle_specs("p", "int main(void){return 0;}", config)
        variants = {spec.variant for spec in specs}
        for level in config.levels:
            for engine in config.engines:
                assert f"{level}+{engine}" in variants

    def test_o0_disables_everything(self):
        options = o0_options()
        assert not options.promotion
        assert not options.run_regalloc
        assert not options.value_numbering
        assert options.verify_each_stage

    def test_clean_seed_passes(self):
        report = run_oracle(generate_program(0))
        assert report.status == "ok", [d.message for d in report.divergences]

    @pytest.mark.slow
    def test_injected_miscompile_is_caught(self):
        program = generate_program(MISCOMPILED_SEED)
        report = run_oracle(program, config_with_broken_promotion())
        assert report.status == "divergent"
        assert any(
            d.kind == "output-divergence" for d in report.divergences
        )
        # and the same program is clean under the correct pipeline
        assert run_oracle(program).status == "ok"

    def test_decisions_speak_the_diag_vocabulary(self):
        report = run_oracle(generate_program(0))
        decisions = report.decisions()
        assert decisions[0].pass_name == "fuzz.oracle"
        assert decisions[0].action == "passed"

    @pytest.mark.slow
    def test_divergence_artifact_layout(self, tmp_path):
        program = generate_program(MISCOMPILED_SEED)
        report = run_oracle(program, config_with_broken_promotion())
        target = write_divergence_artifact(
            report, tmp_path, reduced_source="int main(void){return 1;}\n"
        )
        assert (target / "program.c").read_text() == program.source
        assert (target / "reduced.c").exists()
        assert '"status": "divergent"' in (target / "report.json").read_text()


class TestPredicate:
    def test_predicate_rejects_invalid_c(self):
        predicate = make_divergence_predicate()
        assert predicate("this is not C") is False

    def test_predicate_rejects_clean_program(self):
        predicate = make_divergence_predicate()
        assert predicate(generate_program(0).source) is False

    @pytest.mark.slow
    def test_predicate_accepts_miscompiled_program(self):
        predicate = make_divergence_predicate(
            config_with_broken_promotion(), kind="output-divergence"
        )
        assert predicate(generate_program(MISCOMPILED_SEED).source) is True

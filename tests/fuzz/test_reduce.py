"""The delta reducer: chunking, synthetic ddmin, and a real miscompile."""

import pytest

from repro.fuzz.oracle import (
    OracleConfig,
    config_with_broken_promotion,
    make_divergence_predicate,
)
from repro.fuzz.reduce import chunk_lines, reduce_source

#: a reproducer for the injected promotion bug (a loop stores a global a
#: callee reads) padded with removable declarations, loops, and prints —
#: the reducer must strip the padding and keep the core
MISCOMPILE_WITH_PADDING = """\
long g = 0;
long unused0 = 11;
long unused1 = 22;
long noise[8];
long bump(long k) {
    g += k;
    return g;
}
long idle(long a, long b) {
    return a * b + 1;
}
int main(void) {
    long acc = 0;
    long filler0 = 1;
    long filler1 = 2;
    long i = 0;
    long j = 0;
    for (i = 0; i < 8; i++) {
        g = g + 1;
        acc += bump(i);
    }
    for (j = 0; j < 6; j++) {
        filler0 += idle(j, filler1);
        noise[(j & 7)] += filler0;
    }
    if (filler0 > filler1) {
        filler1 ^= 3;
    }
    printf("acc %ld\\n", acc);
    printf("g %ld\\n", g);
    printf("filler0 %ld\\n", filler0);
    printf("filler1 %ld\\n", filler1);
    return (int)(acc & 63);
}
"""


class TestChunkLines:
    def test_flat_lines_are_single_chunks(self):
        lines = ["a;", "b;", "c;"]
        assert chunk_lines(lines) == [["a;"], ["b;"], ["c;"]]

    def test_block_is_one_chunk_with_header(self):
        lines = ["x;", "while (1) {", "    y;", "}", "z;"]
        chunks = chunk_lines(lines)
        assert chunks == [["x;"], ["while (1) {", "    y;", "}"], ["z;"]]

    def test_nested_blocks_swallowed_whole(self):
        lines = ["f() {", "    if (a) {", "        b;", "    }", "}"]
        assert chunk_lines(lines) == [lines]

    def test_chunks_roundtrip(self):
        lines = MISCOMPILE_WITH_PADDING.splitlines()
        chunks = chunk_lines(lines)
        assert [l for c in chunks for l in c] == lines


class TestSyntheticReduction:
    def test_reduces_to_the_needles(self):
        filler = [f"line{i};" for i in range(10)]
        source = "\n".join(
            filler[:4]
            + ["keep_A;", "block {", "    inner;", "    keep_B;", "}"]
            + filler[4:]
        ) + "\n"

        def predicate(text):
            return "keep_A" in text and "keep_B" in text

        reduced, stats = reduce_source(source, predicate)
        assert "keep_A" in reduced and "keep_B" in reduced
        # everything else is gone (the block unwraps around keep_B)
        assert stats.final_lines == 2
        assert stats.probes > 0

    def test_rejects_non_reproducing_input(self):
        with pytest.raises(ValueError):
            reduce_source("a\nb\n", lambda text: False)

    def test_probe_exceptions_count_as_false(self):
        def predicate(text):
            if "b" not in text:
                raise RuntimeError("boom")
            return "a" in text

        reduced, _ = reduce_source("a\nb\n", predicate)
        assert "a" in reduced and "b" in reduced


class TestMiscompileReduction:
    def test_shrinks_injected_miscompile_to_under_20_lines(self):
        # a 2-cell oracle subset keeps every probe cheap: the broken full
        # pipeline against the O0 reference, threaded engine only
        config = config_with_broken_promotion(
            OracleConfig(levels=("O0", "full"), engines=("threaded",))
        )
        predicate = make_divergence_predicate(config, kind="output-divergence")
        assert predicate(MISCOMPILE_WITH_PADDING), (
            "the padded reproducer must diverge before reduction"
        )
        reduced, stats = reduce_source(MISCOMPILE_WITH_PADDING, predicate)
        assert stats.final_lines <= 20, reduced
        assert predicate(reduced)
        # the core of the bug survives: the callee that touches g
        assert "bump" in reduced and "g" in reduced

"""The campaign driver: budgets, artifacts, and corpus promotion."""

import pytest

from repro.fuzz import CampaignOptions, run_campaign
from repro.fuzz.oracle import config_with_broken_promotion

#: seed whose program the injected promotion bug miscompiles
MISCOMPILED_SEED = 4


class TestCleanCampaign:
    @pytest.mark.slow
    def test_program_cap_is_exact(self, tmp_path):
        options = CampaignOptions(
            budget_seconds=1e9,
            max_programs=3,
            seed=0,
            artifacts_dir=str(tmp_path / "artifacts"),
        )
        result = run_campaign(options)
        assert result.programs == 3
        assert result.ok == 3
        assert result.divergent == 0
        assert result.exit_code() == 0
        assert result.first_seed == 0 and result.last_seed == 2
        assert "3 program(s)" in result.summary()

    def test_zero_budget_runs_nothing(self, tmp_path):
        options = CampaignOptions(
            budget_seconds=0.0, artifacts_dir=str(tmp_path / "artifacts")
        )
        result = run_campaign(options)
        assert result.programs == 0

    @pytest.mark.slow
    def test_progress_callback_sees_every_report(self, tmp_path):
        seen = []
        options = CampaignOptions(
            budget_seconds=1e9,
            max_programs=2,
            artifacts_dir=str(tmp_path / "artifacts"),
        )
        run_campaign(options, progress=seen.append)
        assert [r.program.seed for r in seen] == [0, 1]


class TestDivergentCampaign:
    def test_divergence_writes_artifact_and_corpus(self, tmp_path):
        corpus = tmp_path / "corpus"
        options = CampaignOptions(
            budget_seconds=1e9,
            max_programs=1,
            seed=MISCOMPILED_SEED,
            reduce=False,
            corpus_dir=str(corpus),
            artifacts_dir=str(tmp_path / "artifacts"),
            oracle=config_with_broken_promotion(),
        )
        result = run_campaign(options)
        assert result.divergent == 1
        assert result.exit_code() == 1
        (artifact,) = result.artifact_dirs
        assert (artifact / "program.c").exists()
        assert (artifact / "report.json").exists()
        promoted = corpus / f"fuzz-{MISCOMPILED_SEED}.c"
        header = promoted.read_text()
        assert header.startswith("/* fuzz-")
        assert f"--seed {MISCOMPILED_SEED}" in header

    @pytest.mark.slow
    def test_stops_at_first_divergence_without_keep_going(self, tmp_path):
        options = CampaignOptions(
            budget_seconds=1e9,
            max_programs=32,
            batch_size=8,
            seed=MISCOMPILED_SEED,
            reduce=False,
            artifacts_dir=str(tmp_path / "artifacts"),
            oracle=config_with_broken_promotion(),
        )
        result = run_campaign(options)
        assert result.divergent == 1
        assert result.programs <= 8  # stopped inside the first batch

    @pytest.mark.slow
    def test_keep_going_collects_several(self, tmp_path):
        options = CampaignOptions(
            budget_seconds=1e9,
            max_programs=8,
            batch_size=8,
            seed=MISCOMPILED_SEED,
            keep_going=True,
            reduce=False,
            artifacts_dir=str(tmp_path / "artifacts"),
            oracle=config_with_broken_promotion(),
        )
        result = run_campaign(options)
        assert result.programs == 8
        # seeds 4, 6, 7, 10 all diverge under the injected bug
        assert result.divergent >= 2
        assert len(result.artifact_dirs) == result.divergent

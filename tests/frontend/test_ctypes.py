"""Tests for the C type model."""

from repro.ctype_model import (
    ArrayType,
    CHAR,
    DOUBLE,
    FunctionType,
    INT,
    LONG,
    PointerType,
    SHORT,
    StructType,
    VOID,
    align_up,
    build_struct,
    decay,
    natural_alignment,
    usual_arithmetic,
)


class TestSizes:
    def test_basic_sizes(self):
        assert CHAR.size == 1
        assert SHORT.size == 2
        assert INT.size == 4
        assert LONG.size == 8
        assert DOUBLE.size == 8
        assert PointerType(INT).size == 8
        assert VOID.size == 0

    def test_array_size(self):
        assert ArrayType(INT, 10).size == 40
        assert ArrayType(DOUBLE, 4).size == 32

    def test_nested_array_size(self):
        assert ArrayType(ArrayType(INT, 3), 2).size == 24


class TestClassification:
    def test_scalar(self):
        assert INT.is_scalar()
        assert DOUBLE.is_scalar()
        assert PointerType(INT).is_scalar()
        assert not ArrayType(INT, 2).is_scalar()
        assert not VOID.is_scalar()

    def test_arithmetic(self):
        assert INT.is_arithmetic()
        assert DOUBLE.is_arithmetic()
        assert not PointerType(INT).is_arithmetic()


class TestStructLayout:
    def test_natural_alignment_padding(self):
        s = build_struct("s", [("c", CHAR), ("d", DOUBLE), ("i", INT)])
        assert s.field_named("c").offset == 0
        assert s.field_named("d").offset == 8  # padded to 8
        assert s.field_named("i").offset == 16
        assert s.size == 24  # rounded to max alignment

    def test_packed_ints(self):
        s = build_struct("s", [("a", INT), ("b", INT)])
        assert s.field_named("b").offset == 4
        assert s.size == 8

    def test_struct_with_array_member(self):
        s = build_struct("s", [("n", INT), ("data", ArrayType(INT, 4))])
        assert s.field_named("data").offset == 4
        assert s.size == 20

    def test_alignment_of_struct(self):
        s = build_struct("s", [("c", CHAR), ("d", DOUBLE)])
        assert natural_alignment(s) == 8


class TestConversions:
    def test_decay(self):
        assert decay(ArrayType(INT, 5)) == PointerType(INT)
        f = FunctionType(ret=INT)
        assert decay(f) == PointerType(f)
        assert decay(INT) == INT

    def test_usual_arithmetic(self):
        assert usual_arithmetic(INT, DOUBLE) == DOUBLE
        assert usual_arithmetic(DOUBLE, INT) == DOUBLE
        assert usual_arithmetic(CHAR, SHORT) == INT  # integer promotion
        assert usual_arithmetic(INT, LONG) == LONG
        assert usual_arithmetic(PointerType(INT), INT).is_pointer()

    def test_align_up(self):
        assert align_up(0, 8) == 0
        assert align_up(1, 8) == 8
        assert align_up(8, 8) == 8
        assert align_up(9, 4) == 12
        assert align_up(5, 1) == 5

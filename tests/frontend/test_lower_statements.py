"""Statement-lowering tests, verified end-to-end through the interpreter."""

import pytest

from repro.errors import FrontendError
from tests.helpers import run_c


class TestIf:
    def test_if_without_else(self):
        src = r"""
        int main(void) {
            int x;
            x = 1;
            if (x > 0) { x = 10; }
            printf("%d\n", x);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "10"

    def test_if_else_both_arms(self):
        src = r"""
        int classify(int n) {
            if (n < 0) { return -1; } else { return 1; }
        }
        int main(void) {
            printf("%d %d\n", classify(-5), classify(5));
            return 0;
        }
        """
        assert run_c(src).output.strip() == "-1 1"

    def test_else_if_chain(self):
        src = r"""
        int grade(int score) {
            if (score >= 90) { return 'A'; }
            else if (score >= 80) { return 'B'; }
            else if (score >= 70) { return 'C'; }
            else { return 'F'; }
        }
        int main(void) {
            printf("%c%c%c%c\n", grade(95), grade(85), grade(75), grade(5));
            return 0;
        }
        """
        assert run_c(src).output.strip() == "ABCF"

    def test_dangling_else(self):
        src = r"""
        int main(void) {
            int r;
            r = 0;
            if (1)
                if (0) r = 1;
                else r = 2;
            printf("%d\n", r);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "2"


class TestLoops:
    def test_while(self):
        src = r"""
        int main(void) {
            int i;
            int s;
            i = 0; s = 0;
            while (i < 5) { s += i; i++; }
            printf("%d\n", s);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "10"

    def test_while_zero_trips(self):
        src = r"""
        int main(void) {
            int s;
            s = 7;
            while (0) { s = 99; }
            printf("%d\n", s);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "7"

    def test_do_while_runs_at_least_once(self):
        src = r"""
        int main(void) {
            int n;
            n = 0;
            do { n++; } while (0);
            printf("%d\n", n);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "1"

    def test_for_all_clauses(self):
        src = r"""
        int main(void) {
            int s;
            int i;
            s = 0;
            for (i = 1; i <= 4; i++) { s *= 10; s += i; }
            printf("%d\n", s);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "1234"

    def test_for_with_decl_init(self):
        src = r"""
        int main(void) {
            int s;
            s = 0;
            for (int i = 0; i < 3; i++) { s += i; }
            printf("%d\n", s);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "3"

    def test_for_empty_cond_with_break(self):
        src = r"""
        int main(void) {
            int i;
            i = 0;
            for (;;) {
                i++;
                if (i == 6) { break; }
            }
            printf("%d\n", i);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "6"

    def test_continue_skips_rest(self):
        src = r"""
        int main(void) {
            int i;
            int s;
            s = 0;
            for (i = 0; i < 10; i++) {
                if (i % 2) { continue; }
                s += i;
            }
            printf("%d\n", s);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "20"

    def test_continue_in_while_rechecks_condition(self):
        src = r"""
        int main(void) {
            int i;
            int n;
            i = 0; n = 0;
            while (i < 5) {
                i++;
                if (i == 3) { continue; }
                n++;
            }
            printf("%d %d\n", i, n);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "5 4"

    def test_nested_break_only_inner(self):
        src = r"""
        int main(void) {
            int i;
            int j;
            int count;
            count = 0;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 10; j++) {
                    if (j == 2) { break; }
                    count++;
                }
            }
            printf("%d\n", count);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "6"


class TestSwitch:
    def test_dispatch_and_break(self):
        src = r"""
        int name(int d) {
            switch (d) {
            case 1: return 10;
            case 2: return 20;
            default: return -1;
            }
        }
        int main(void) {
            printf("%d %d %d\n", name(1), name(2), name(9));
            return 0;
        }
        """
        assert run_c(src).output.strip() == "10 20 -1"

    def test_fallthrough(self):
        src = r"""
        int main(void) {
            int x;
            int r;
            x = 1;
            r = 0;
            switch (x) {
            case 0: r += 1;
            case 1: r += 10;
            case 2: r += 100;
                break;
            case 3: r += 1000;
            }
            printf("%d\n", r);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "110"

    def test_no_default_falls_out(self):
        src = r"""
        int main(void) {
            int r;
            r = 5;
            switch (99) {
            case 1: r = 1; break;
            }
            printf("%d\n", r);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "5"


class TestFunctions:
    def test_recursion(self):
        src = r"""
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) { printf("%d\n", fib(12)); return 0; }
        """
        assert run_c(src).output.strip() == "144"

    def test_mutual_recursion(self):
        src = r"""
        int is_odd(int n);
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        int main(void) { printf("%d%d\n", is_even(8), is_odd(8)); return 0; }
        """
        assert run_c(src).output.strip() == "10"

    def test_void_function(self):
        src = r"""
        int g;
        void bump(void) { g++; }
        int main(void) { bump(); bump(); printf("%d\n", g); return 0; }
        """
        assert run_c(src).output.strip() == "2"

    def test_argument_conversion(self):
        src = r"""
        double half(double x) { return x / 2.0; }
        int main(void) { printf("%f\n", half(7)); return 0; }
        """
        assert run_c(src).output.strip() == "3.500000"

    def test_missing_return_defaults_to_zero(self):
        src = "int main(void) { }"
        assert run_c(src).exit_code == 0

    def test_out_params_through_pointers(self):
        src = r"""
        void divmod(int a, int b, int *q, int *r) {
            *q = a / b;
            *r = a % b;
        }
        int main(void) {
            int q;
            int r;
            divmod(17, 5, &q, &r);
            printf("%d %d\n", q, r);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "3 2"


class TestScoping:
    def test_shadowing_in_block(self):
        src = r"""
        int main(void) {
            int x;
            x = 1;
            {
                int x;
                x = 2;
                printf("%d", x);
            }
            printf("%d\n", x);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "21"

    def test_global_initializers(self):
        src = r"""
        int scalar = 42;
        double d = 2.5;
        int arr[4] = {1, 2, 3, 4};
        int grid[2][2] = {{1, 2}, {3, 4}};
        int main(void) {
            printf("%d %f %d %d\n", scalar, d, arr[2], grid[1][0]);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "42 2.500000 3 3"

    def test_local_array_initializer(self):
        src = r"""
        int main(void) {
            int a[3] = {5, 6, 7};
            printf("%d\n", a[0] + a[1] + a[2]);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "18"

    def test_typedef(self):
        src = r"""
        typedef int counter;
        typedef double real;
        counter c;
        int main(void) {
            real r;
            c = 3;
            r = 1.5;
            printf("%d %f\n", c, r);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "3 1.500000"

    def test_break_outside_loop_rejected(self):
        with pytest.raises(FrontendError):
            run_c("int main(void) { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(FrontendError):
            run_c("int main(void) { continue; }")

    def test_redeclaration_rejected(self):
        with pytest.raises(FrontendError):
            run_c("int main(void) { int x; int x; return 0; }")

"""Tests for the mini-preprocessor."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.frontend.preprocess import preprocess, strip_comments


class TestComments:
    def test_block_comment_removed(self):
        assert strip_comments("int /* comment */ x;") == "int   x;"

    def test_line_comment_removed(self):
        assert strip_comments("int x; // tail\nint y;") == "int x; \nint y;"

    def test_multiline_block_keeps_line_numbers(self):
        out = strip_comments("a /* one\ntwo\nthree */ b")
        assert out.count("\n") == 2
        assert "one" not in out

    def test_comment_markers_inside_strings_survive(self):
        src = 'char *s = "/* not a comment */";'
        assert strip_comments(src) == src

    def test_slashes_in_char_literal(self):
        src = "int c = '/';\nint d = c / 2; // half"
        out = strip_comments(src)
        assert "'/'" in out
        assert "half" not in out

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            strip_comments("int x; /* never closed")


class TestDefines:
    def test_object_macro_expansion(self):
        out = preprocess("#define N 10\nint a[N];\n")
        assert "int a[10];" in out

    def test_macro_not_expanded_inside_identifier(self):
        out = preprocess("#define N 10\nint N1;\nint xN;\n")
        assert "int N1;" in out
        assert "int xN;" in out

    def test_macro_not_expanded_in_string(self):
        out = preprocess('#define N 10\nchar *s = "N";\n')
        assert '"N"' in out

    def test_recursive_expansion(self):
        out = preprocess("#define A B\n#define B 3\nint x = A;\n")
        assert "int x = 3;" in out

    def test_self_referential_macro_detected(self):
        with pytest.raises(UnsupportedFeatureError):
            preprocess("#define LOOP LOOP more\nint x = LOOP;\n")

    def test_function_like_macro_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            preprocess("#define SQ(x) ((x)*(x))\n")

    def test_external_defines(self):
        out = preprocess("int mode = MODE;\n", defines={"MODE": "2"})
        assert "int mode = 2;" in out

    def test_undef(self):
        out = preprocess("#define N 1\n#undef N\nint N;\n")
        assert "int N;" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define ON 1\n#ifdef ON\nint x;\n#endif\n")
        assert "int x;" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef OFF\nint x;\n#endif\nint y;\n")
        assert "int x;" not in out
        assert "int y;" in out

    def test_ifndef(self):
        out = preprocess("#ifndef OFF\nint x;\n#endif\n")
        assert "int x;" in out

    def test_else(self):
        out = preprocess("#ifdef OFF\nint x;\n#else\nint y;\n#endif\n")
        assert "int x;" not in out
        assert "int y;" in out

    def test_nested_conditionals(self):
        src = (
            "#define A 1\n#ifdef A\n#ifdef B\nint both;\n#else\n"
            "int only_a;\n#endif\n#endif\n"
        )
        out = preprocess(src)
        assert "int only_a;" in out
        assert "int both;" not in out

    def test_unbalanced_endif_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            preprocess("#endif\n")

    def test_unterminated_ifdef_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            preprocess("#ifdef X\nint a;\n")

    def test_line_numbers_preserved(self):
        src = "#include <stdio.h>\n\nint x;\n"
        out = preprocess(src)
        assert out.splitlines()[2] == "int x;"


class TestIncludes:
    def test_include_dropped(self):
        out = preprocess('#include <stdio.h>\n#include "local.h"\nint x;\n')
        assert "include" not in out
        assert "int x;" in out

    def test_unknown_directive_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            preprocess("#pragma once\n")

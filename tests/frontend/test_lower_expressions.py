"""Expression-lowering tests, verified end-to-end through the interpreter."""

import pytest

from repro.errors import FrontendError, UnsupportedFeatureError
from tests.helpers import run_c


def expr_program(expr: str, setup: str = "", fmt: str = "%d") -> str:
    return (
        "int main(void) {\n"
        + setup
        + f'    printf("{fmt}\\n", {expr});\n'
        + "    return 0;\n}\n"
    )


def eval_int(expr: str, setup: str = "") -> int:
    out = run_c(expr_program(expr, setup)).output.strip()
    return int(out)


def eval_float(expr: str, setup: str = "") -> float:
    out = run_c(expr_program(expr, setup, fmt="%f")).output.strip()
    return float(out)


class TestArithmetic:
    @pytest.mark.parametrize(
        "expr,value",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("7 / 2", 3),
            ("-7 / 2", -3),       # C: truncation toward zero
            ("7 % 3", 1),
            ("-7 % 3", -1),       # C: sign of the dividend
            ("1 << 10", 1024),
            ("1024 >> 3", 128),
            ("0xF0 & 0x3C", 0x30),
            ("0xF0 | 0x0F", 0xFF),
            ("0xFF ^ 0x0F", 0xF0),
            ("~0", -1),
            ("-(5)", -5),
            ("+(5)", 5),
        ],
    )
    def test_integer_expressions(self, expr, value):
        assert eval_int(expr) == value

    def test_float_division(self):
        assert eval_float("7.0 / 2.0") == pytest.approx(3.5)

    def test_mixed_arithmetic_promotes(self):
        assert eval_float("7 / 2.0") == pytest.approx(3.5)
        assert eval_float("1 + 0.5") == pytest.approx(1.5)

    def test_cast_truncates(self):
        assert eval_int("(int) 3.9") == 3
        assert eval_int("(int) -3.9") == -3

    def test_cast_to_double(self):
        assert eval_float("(double) 3 / 2") == pytest.approx(1.5)


class TestComparisonsAndLogic:
    @pytest.mark.parametrize(
        "expr,value",
        [
            ("3 < 4", 1), ("4 < 3", 0),
            ("3 <= 3", 1), ("3 > 3", 0), ("3 >= 3", 1),
            ("3 == 3", 1), ("3 != 3", 0),
            ("!0", 1), ("!5", 0),
            ("1 && 2", 1), ("1 && 0", 0), ("0 && 1", 0),
            ("0 || 0", 0), ("0 || 7", 1), ("3 || 0", 1),
        ],
    )
    def test_predicates(self, expr, value):
        assert eval_int(expr) == value

    def test_short_circuit_and(self):
        # the right operand must not execute: it would divide by zero
        setup = "    int z;\n    z = 0;\n"
        assert eval_int("z != 0 && (10 / z) > 0", setup) == 0

    def test_short_circuit_or(self):
        setup = "    int z;\n    z = 0;\n"
        assert eval_int("z == 0 || (10 / z) > 0", setup) == 1

    def test_ternary(self):
        assert eval_int("1 ? 10 : 20") == 10
        assert eval_int("0 ? 10 : 20") == 20

    def test_ternary_evaluates_one_side(self):
        setup = "    int z;\n    z = 0;\n"
        assert eval_int("z ? 10 / z : 42", setup) == 42

    def test_comma(self):
        assert eval_int("(1, 2, 3)") == 3


class TestAssignmentOperators:
    @pytest.mark.parametrize(
        "op,start,rhs,expected",
        [
            ("+=", 10, 3, 13),
            ("-=", 10, 3, 7),
            ("*=", 10, 3, 30),
            ("/=", 10, 3, 3),
            ("%=", 10, 3, 1),
            ("<<=", 1, 4, 16),
            (">>=", 16, 2, 4),
            ("&=", 0xF, 0x9, 9),
            ("|=", 0x8, 0x1, 9),
            ("^=", 0xF, 0x1, 14),
        ],
    )
    def test_compound_assignment(self, op, start, rhs, expected):
        setup = f"    int x;\n    x = {start};\n    x {op} {rhs};\n"
        assert eval_int("x", setup) == expected

    def test_assignment_value(self):
        setup = "    int x;\n    int y;\n    y = (x = 5) + 1;\n"
        assert eval_int("y", setup) == 6

    def test_chained_assignment(self):
        setup = "    int a;\n    int b;\n    a = b = 4;\n"
        assert eval_int("a + b", setup) == 8


class TestIncDec:
    def test_postincrement_yields_old(self):
        setup = "    int x;\n    int y;\n    x = 5;\n    y = x++;\n"
        assert eval_int("y * 100 + x", setup) == 506

    def test_preincrement_yields_new(self):
        setup = "    int x;\n    int y;\n    x = 5;\n    y = ++x;\n"
        assert eval_int("y * 100 + x", setup) == 606

    def test_postdecrement(self):
        setup = "    int x;\n    x = 5;\n    x--;\n"
        assert eval_int("x", setup) == 4

    def test_increment_through_pointer_scales(self):
        setup = (
            "    int arr[3];\n    int *p;\n"
            "    arr[0] = 10; arr[1] = 20; arr[2] = 30;\n"
            "    p = arr;\n    p++;\n"
        )
        assert eval_int("*p", setup) == 20


class TestPointersAndArrays:
    def test_address_of_and_deref(self):
        setup = "    int x;\n    int *p;\n    x = 9;\n    p = &x;\n    *p = 11;\n"
        assert eval_int("x", setup) == 11

    def test_pointer_arithmetic(self):
        setup = (
            "    int arr[4];\n    int *p;\n    int i;\n"
            "    for (i = 0; i < 4; i++) { arr[i] = i * i; }\n"
            "    p = arr + 1;\n"
        )
        assert eval_int("*(p + 2)", setup) == 9

    def test_pointer_difference(self):
        setup = (
            "    int arr[8];\n    int *a;\n    int *b;\n"
            "    a = arr + 1;\n    b = arr + 6;\n"
        )
        assert eval_int("(int)(b - a)", setup) == 5

    def test_2d_array(self):
        setup = (
            "    int m[3][4];\n    int i;\n    int j;\n"
            "    for (i = 0; i < 3; i++) {\n"
            "        for (j = 0; j < 4; j++) { m[i][j] = i * 10 + j; }\n"
            "    }\n"
        )
        assert eval_int("m[2][3]", setup) == 23

    def test_array_through_pointer_param(self):
        src = r"""
        int sum(int *data, int n) {
            int total;
            int i;
            total = 0;
            for (i = 0; i < n; i++) { total += data[i]; }
            return total;
        }
        int main(void) {
            int arr[5];
            int i;
            for (i = 0; i < 5; i++) { arr[i] = i + 1; }
            printf("%d\n", sum(arr, 5));
            return 0;
        }
        """
        assert run_c(src).output.strip() == "15"


class TestStructs:
    def test_member_access(self):
        src = r"""
        struct point { int x; int y; };
        int main(void) {
            struct point p;
            p.x = 3;
            p.y = 4;
            printf("%d\n", p.x * p.x + p.y * p.y);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "25"

    def test_arrow_access(self):
        src = r"""
        struct pair { int a; int b; };
        int main(void) {
            struct pair p;
            struct pair *q;
            q = &p;
            q->a = 6;
            q->b = 7;
            printf("%d\n", q->a * q->b);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "42"

    def test_struct_with_double_and_padding(self):
        src = r"""
        struct mixed { char c; double d; int i; };
        int main(void) {
            struct mixed m;
            m.c = 'x';
            m.d = 2.5;
            m.i = 4;
            printf("%c %f %d\n", m.c, m.d, m.i);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "x 2.500000 4"


class TestConstantsAndSizeof:
    def test_char_literal(self):
        assert eval_int("'A'") == 65
        assert eval_int("'\\n'") == 10

    def test_hex_and_octal(self):
        assert eval_int("0x1F") == 31
        assert eval_int("010") == 8

    def test_sizeof_type(self):
        assert eval_int("(int) sizeof(int)") == 4
        assert eval_int("(int) sizeof(double)") == 8
        assert eval_int("(int) sizeof(char *)") == 8

    def test_sizeof_variable(self):
        setup = "    int arr[10];\n    arr[0] = 0;\n"
        assert eval_int("(int) sizeof arr", setup) == 40

    def test_enum_constants(self):
        src = r"""
        enum color { RED, GREEN = 5, BLUE };
        int main(void) {
            printf("%d %d %d\n", RED, GREEN, BLUE);
            return 0;
        }
        """
        assert run_c(src).output.strip() == "0 5 6"


class TestErrors:
    def test_undeclared_variable(self):
        with pytest.raises(FrontendError):
            run_c("int main(void) { return nope; }")

    def test_undeclared_function(self):
        with pytest.raises(FrontendError):
            run_c("int main(void) { return mystery(1); }")

    def test_union_unsupported(self):
        with pytest.raises(UnsupportedFeatureError):
            run_c("union u { int a; }; int main(void) { return 0; }")

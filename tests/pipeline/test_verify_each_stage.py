"""Every workload must verify cleanly between *every* pipeline stage.

The regular workload tests check end results; this suite turns on
``verify_each_stage`` so the IR verifier runs after the front end, after
every analysis, and after every optimization pass — any pass that leaves
the module in an inconsistent state fails here with the stage that broke
it, not three passes later.

Two pipeline shapes bracket the matrix: the ``O0`` reference cell (front
end straight into the interpreter — verifies the lowering itself) and the
richest cell (pointer analysis + promotion + pointer promotion + the full
optimizer + register allocation).
"""

import pytest

from repro.fuzz.oracle import o0_options
from repro.interp import MachineOptions
from repro.pipeline import Analysis, PipelineOptions, compile_and_run
from repro.workloads import get_workload, workload_names

#: enough fuel for every workload at -O0 (the slowest cell)
_MAX_STEPS = 200_000_000


def _full_options() -> PipelineOptions:
    return PipelineOptions(
        analysis=Analysis.POINTER,
        pointer_promotion=True,
        verify_each_stage=True,
    )


#: heavyweight programs whose staged-verify runs leave the fast lane
_SLOW = frozenset({"compress", "gzip_enc", "gzip_dec"})


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(n, marks=pytest.mark.slow) if n in _SLOW else n
        for n in workload_names()
    ],
)
class TestVerifyEachStage:
    def test_o0(self, name):
        workload = get_workload(name)
        cell = compile_and_run(
            workload.source,
            o0_options(),
            name=name,
            defines=workload.defines,
            machine_options=MachineOptions(max_steps=_MAX_STEPS),
        )
        assert cell.exit_code == 0

    def test_full(self, name):
        workload = get_workload(name)
        cell = compile_and_run(
            workload.source,
            _full_options(),
            name=name,
            defines=workload.defines,
            machine_options=MachineOptions(max_steps=_MAX_STEPS),
        )
        assert cell.exit_code == 0

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

PROGRAM = r"""
int total;
int main(void) {
    int i;
    for (i = 0; i < 10; i++) { total += i; }
    printf("total=%d\n", total);
    return 0;
}
"""


@pytest.fixture()
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_run_executes_and_prints(self, c_file, capsys):
        code = main(["run", c_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "total=45" in captured.out
        assert "ops=" in captured.err

    def test_run_exit_code_is_programs(self, tmp_path, capsys):
        path = tmp_path / "exit7.c"
        path.write_text("int main(void) { return 7; }")
        assert main(["run", str(path)]) == 7

    def test_variant_flags(self, c_file, capsys):
        code = main(["run", c_file, "--analysis", "pointer", "--no-promotion"])
        assert code == 0
        assert "pointer/nopromo" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_four_variants(self, c_file, capsys):
        assert main(["compare", c_file]) == 0
        out = capsys.readouterr().out
        for variant in (
            "modref/nopromo", "modref/promo", "pointer/nopromo", "pointer/promo"
        ):
            assert variant in out
        assert "total=45" in out

    def test_compare_json_dump(self, c_file, tmp_path, capsys):
        import json

        out = tmp_path / "cells.json"
        assert main(["compare", c_file, "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert set(payload) == {
            "modref/nopromo", "modref/promo", "pointer/nopromo", "pointer/promo"
        }
        assert payload["modref/promo"]["counters"]["total_ops"] > 0

    def test_compare_trace_export(self, c_file, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(["compare", c_file, "--trace", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        assert any(e.get("name") == "promotion" for e in events)
        assert "span" in capsys.readouterr().err


class TestRunProfile:
    def test_profile_prints_hot_loop_table(self, c_file, capsys):
        assert main(["run", c_file, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "visits" in err
        assert "main@" in err

    def test_profile_leaves_stdout_untouched(self, c_file, capsys):
        main(["run", c_file])
        plain = capsys.readouterr().out
        main(["run", c_file, "--profile"])
        profiled = capsys.readouterr().out
        assert profiled == plain


class TestCompareExtras:
    def test_promotion_summary_per_variant(self, c_file, capsys):
        assert main(["compare", c_file]) == 0
        out = capsys.readouterr().out
        assert "promotion summary:" in out
        assert "promotion disabled" in out  # the nopromo rows
        assert "tag(s) promoted" in out
        assert "lifted main@" in out  # `total` lifts out of the loop

    def test_profile_comparison_tables(self, c_file, capsys):
        assert main(["compare", c_file, "--profile"]) == 0
        err = capsys.readouterr().err
        assert "per-loop memory traffic (modref):" in err
        assert "per-loop memory traffic (pointer):" in err
        assert "mem removed" in err


class TestExplain:
    def test_promotion_decision_in_table(self, c_file, capsys):
        assert main(["explain", c_file, "--pass", "promotion"]) == 0
        out = capsys.readouterr().out
        assert "promotion" in out
        assert "total" in out
        assert "promoted" in out

    def test_tag_filter_and_json(self, c_file, capsys):
        import json

        assert main(["explain", c_file, "--tag", "total", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            assert json.loads(line)["tag"] == "total"

    def test_no_matches_renders_empty_table(self, c_file, capsys):
        assert main(["explain", c_file, "--tag", "nonesuch"]) == 0
        assert "(no decisions recorded)" in capsys.readouterr().out


class TestVerbosity:
    def test_verbose_before_or_after_subcommand(self, c_file, capsys):
        assert main(["-v", "run", c_file]) == 0
        before = capsys.readouterr().err
        assert "INFO repro.pipeline" in before
        assert main(["run", c_file, "-v"]) == 0
        assert "INFO repro.pipeline" in capsys.readouterr().err

    def test_default_hides_info_logs(self, c_file, capsys):
        assert main(["run", c_file]) == 0
        assert "INFO repro" not in capsys.readouterr().err

    def test_quiet_flag_accepted(self, c_file, capsys):
        assert main(["-q", "run", c_file]) == 0


class TestIR:
    def test_ir_prints_module(self, c_file, capsys):
        assert main(["ir", c_file]) == 0
        out = capsys.readouterr().out
        assert "func main()" in out
        assert "global total" in out

    def test_no_opt_keeps_raw_loads(self, c_file, capsys):
        main(["ir", c_file, "--no-opt"])
        raw = capsys.readouterr().out
        main(["ir", c_file])
        optimized = capsys.readouterr().out
        # the raw form reloads `total` in the loop; the optimized form
        # promotes it, so the loop body loses its sload
        assert raw.count("sload [total]") > optimized.count("sload [total]")


class TestSuite:
    def test_unknown_program_rejected(self, capsys):
        assert main(["suite", "nonesuch"]) == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_single_program(self, capsys):
        assert main(["suite", "allroots", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5: Total Operations" in out

    @pytest.mark.slow
    def test_parallel_jobs_and_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "suite.json"
        code = main(
            ["suite", "allroots", "tsp", "--jobs", "2", "--no-cache",
             "--json", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["jobs"] == 2
        assert set(payload["programs"]) == {"allroots", "tsp"}
        assert "Figure 7: Loads" in capsys.readouterr().out

    def test_cache_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["suite", "allroots", "--cache-dir", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "misses" in cold.err
        assert main(args) == 0
        warm = capsys.readouterr()
        assert "cache: 4 hits" in warm.err
        assert cold.out == warm.out  # byte-identical figures from cache
        assert main(args + ["--clear-cache"]) == 0
        cleared = capsys.readouterr().err
        # 4 result cells plus the per-function entries behind them
        assert "cache cleared (4 cells, " in cleared
        assert " functions)" in cleared

    def test_trace_export(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        code = main(["suite", "allroots", "--no-cache", "--trace", str(out)])
        assert code == 0
        events = json.loads(out.read_text())["traceEvents"]
        assert any(e.get("name") == "promotion" for e in events)

    def test_max_steps_flag_is_enforced(self, capsys):
        # an absurdly small budget must surface as a cell failure, not a
        # crash of the whole suite
        code = main(["suite", "allroots", "--no-cache", "--max-steps", "10"])
        assert code == 1
        err = capsys.readouterr().err
        assert "FAILED" in err
        assert "exceeded 10 executed operations" in err

    def test_pointer_promotion_flag_accepted(self, capsys):
        assert main(["suite", "allroots", "--no-cache",
                     "--pointer-promotion"]) == 0
        assert "Figure 5" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analysis_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x.c", "--analysis", "magic"])

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

PROGRAM = r"""
int total;
int main(void) {
    int i;
    for (i = 0; i < 10; i++) { total += i; }
    printf("total=%d\n", total);
    return 0;
}
"""


@pytest.fixture()
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_run_executes_and_prints(self, c_file, capsys):
        code = main(["run", c_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "total=45" in captured.out
        assert "ops=" in captured.err

    def test_run_exit_code_is_programs(self, tmp_path, capsys):
        path = tmp_path / "exit7.c"
        path.write_text("int main(void) { return 7; }")
        assert main(["run", str(path)]) == 7

    def test_variant_flags(self, c_file, capsys):
        code = main(["run", c_file, "--analysis", "pointer", "--no-promotion"])
        assert code == 0
        assert "pointer/nopromo" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_four_variants(self, c_file, capsys):
        assert main(["compare", c_file]) == 0
        out = capsys.readouterr().out
        for variant in (
            "modref/nopromo", "modref/promo", "pointer/nopromo", "pointer/promo"
        ):
            assert variant in out
        assert "total=45" in out


class TestIR:
    def test_ir_prints_module(self, c_file, capsys):
        assert main(["ir", c_file]) == 0
        out = capsys.readouterr().out
        assert "func main()" in out
        assert "global total" in out

    def test_no_opt_keeps_raw_loads(self, c_file, capsys):
        main(["ir", c_file, "--no-opt"])
        raw = capsys.readouterr().out
        main(["ir", c_file])
        optimized = capsys.readouterr().out
        # the raw form reloads `total` in the loop; the optimized form
        # promotes it, so the loop body loses its sload
        assert raw.count("sload [total]") > optimized.count("sload [total]")


class TestSuite:
    def test_unknown_program_rejected(self, capsys):
        assert main(["suite", "nonesuch"]) == 2
        assert "unknown workloads" in capsys.readouterr().err

    def test_single_program(self, capsys):
        assert main(["suite", "allroots"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5: Total Operations" in out
        assert "allroots" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analysis_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x.c", "--analysis", "magic"])

"""Tests for the 14-program workload suite and the experiment harness.

The full Figures 5-7 matrix is exercised by the benchmarks; here we check
the registry, compile-and-run every program once (unoptimized), and run
the complete 4-variant matrix on three representative programs with the
output-agreement oracle.
"""

import pytest

from repro.frontend import compile_c
from repro.harness import figure_rows, format_figure, run_program_matrix, summary_line
from repro.interp import MachineOptions, run_module
from repro.workloads import all_workloads, get_workload, workload_names

EXPECTED_NAMES = {
    "tsp", "mlink", "fft", "clean", "compress", "dhrystone", "water",
    "indent", "allroots", "bc", "go", "bison", "gzip_enc", "gzip_dec",
}


class TestRegistry:
    def test_fourteen_programs(self):
        assert set(workload_names()) == EXPECTED_NAMES
        assert len(all_workloads()) == 14

    def test_lookup(self):
        w = get_workload("mlink")
        assert w.name == "mlink"
        assert "linkage" in w.description

    def test_every_workload_documents_paper_behaviour(self):
        for w in all_workloads():
            assert w.paper_behaviour, w.name

    def test_sources_are_nontrivial(self):
        for w in all_workloads():
            assert w.line_count >= 40, w.name


class TestExecution:
    @pytest.mark.parametrize(
        "name",
        [
            pytest.param(n, marks=pytest.mark.slow)
            if n in {"compress", "gzip_enc", "gzip_dec"}
            else n
            for n in sorted(EXPECTED_NAMES)
        ],
    )
    def test_compiles_and_runs_unoptimized(self, name):
        w = get_workload(name)
        module = compile_c(w.source, name=w.name, defines=w.defines)
        result = run_module(module, options=MachineOptions(max_steps=30_000_000))
        assert result.exit_code == 0, result.output
        assert result.output.strip(), "every workload prints a result line"
        assert w.name.split("_")[0] in result.output

    @pytest.mark.slow
    def test_deterministic(self):
        w = get_workload("compress")
        first = run_module(compile_c(w.source, defines=w.defines))
        second = run_module(compile_c(w.source, defines=w.defines))
        assert first.output == second.output
        assert first.counters.total_ops == second.counters.total_ops


class TestHarness:
    @pytest.fixture(scope="class")
    def mlink_matrix(self):
        return run_program_matrix(get_workload("mlink"))

    def test_matrix_has_four_cells(self, mlink_matrix):
        assert set(mlink_matrix.cells) == {
            "modref/nopromo", "modref/promo", "pointer/nopromo", "pointer/promo",
        }

    def test_mlink_shows_large_store_removal(self, mlink_matrix):
        row = mlink_matrix.row("modref", "stores")
        assert row.percent_removed > 40.0  # the paper's standout result

    def test_pointer_beats_modref_on_mlink(self, mlink_matrix):
        modref = mlink_matrix.row("modref", "stores")
        pointer = mlink_matrix.row("pointer", "stores")
        assert pointer.with_promotion <= modref.with_promotion

    def test_rows_and_formatting(self, mlink_matrix):
        rows = figure_rows({"mlink": mlink_matrix}, "loads")
        assert len(rows) == 2
        table = format_figure({"mlink": mlink_matrix}, "stores")
        assert "mlink" in table
        assert "% removed" in table
        assert summary_line(rows)

    def test_unknown_metric_rejected(self, mlink_matrix):
        with pytest.raises(ValueError):
            figure_rows({"mlink": mlink_matrix}, "cycles")

    @pytest.mark.slow
    def test_tsp_has_no_opportunities(self):
        matrix = run_program_matrix(get_workload("tsp"))
        for analysis in ("modref", "pointer"):
            assert matrix.row(analysis, "stores").difference == 0
            assert matrix.row(analysis, "loads").difference == 0

    def test_dhrystone_promotion_is_not_a_win(self):
        matrix = run_program_matrix(get_workload("dhrystone"))
        row = matrix.row("modref", "total_ops")
        # the paper: a marginal net loss (promotion in one-trip loops)
        assert row.percent_removed <= 0.5

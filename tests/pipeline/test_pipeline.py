"""Integration tests for the full compilation pipeline."""

import pytest

from repro.errors import ReproError
from repro.pipeline import (
    Analysis,
    PipelineOptions,
    check_outputs_agree,
    compile_and_run,
    compile_source,
    paper_variants,
)
from repro.regalloc import RegAllocOptions
from tests.helpers import run_all_variants, run_c

PROGRAM = r"""
int total;
int limit;

int step(int x) { return x * 3 + 1; }

int main(void) {
    int i;
    limit = 20;
    for (i = 0; i < limit; i++) {
        total += step(i) % 7;
    }
    printf("%d\n", total);
    return 0;
}
"""


class TestVariants:
    def test_four_paper_variants_exist(self):
        variants = paper_variants()
        assert set(variants) == {
            "modref/nopromo",
            "modref/promo",
            "pointer/nopromo",
            "pointer/promo",
        }
        assert variants["modref/promo"].promotion
        assert not variants["pointer/nopromo"].promotion
        assert variants["pointer/promo"].analysis is Analysis.POINTER

    def test_all_variants_preserve_semantics(self):
        run_all_variants(PROGRAM)

    def test_variant_name(self):
        opts = PipelineOptions(analysis=Analysis.POINTER, promotion=False)
        assert opts.variant_name() == "pointer/nopromo"

    def test_check_outputs_agree_raises_on_divergence(self):
        cells = run_all_variants(PROGRAM)
        # sabotage one cell
        import copy

        broken = copy.copy(cells["modref/promo"])
        broken.output = "different\n"
        cells["modref/promo"] = broken
        with pytest.raises(ReproError):
            check_outputs_agree(cells)


class TestOptimizationEffects:
    def test_optimized_never_slower_on_promotion_friendly_code(self):
        cells = run_all_variants(PROGRAM)
        raw = run_c(PROGRAM)
        for cell in cells.values():
            assert cell.counters.total_ops <= raw.counters.total_ops

    def test_promotion_effect_visible(self):
        cells = run_all_variants(PROGRAM)
        assert (
            cells["modref/promo"].counters.stores
            < cells["modref/nopromo"].counters.stores
        )

    def test_analysis_none_still_correct(self):
        opts = PipelineOptions(analysis=Analysis.NONE, promotion=True)
        cell = compile_and_run(PROGRAM, opts)
        assert cell.output == run_c(PROGRAM).output

    def test_no_promotion_without_analysis_for_globals_in_call_loops(self):
        # with Analysis.NONE every call keeps a universal summary, so the
        # promoter can find nothing in loops containing calls
        opts = PipelineOptions(analysis=Analysis.NONE, promotion=True)
        result = compile_source(PROGRAM, opts)
        report = result.promotion_reports["main"]
        assert report.promoted_tags == set()

    def test_verify_each_stage(self):
        opts = PipelineOptions(verify_each_stage=True)
        compile_source(PROGRAM, opts)

    def test_pass_toggles(self):
        opts = PipelineOptions(
            value_numbering=False,
            constant_propagation=False,
            licm=False,
            pre=False,
            dce=False,
            clean=False,
            run_regalloc=False,
            promotion=True,
        )
        cell = compile_and_run(PROGRAM, opts)
        assert cell.output == run_c(PROGRAM).output

    def test_small_register_file(self):
        opts = PipelineOptions(regalloc=RegAllocOptions(num_registers=6))
        cell = compile_and_run(PROGRAM, opts)
        assert cell.output == run_c(PROGRAM).output


class TestCompileResultReports:
    def test_reports_populated(self):
        result = compile_source(PROGRAM, PipelineOptions())
        assert "main" in result.promotion_reports
        assert "main" in result.regalloc_reports
        assert result.modref is not None

    def test_pointer_promotion_reports(self):
        opts = PipelineOptions(pointer_promotion=True)
        result = compile_source(PROGRAM, opts)
        assert "main" in result.pointer_promotion_reports

"""The shipped examples must run cleanly — they are the documentation."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "modref/promo" in proc.stdout
        assert "counter=4500" in proc.stdout
        assert "promoted to registers in main" in proc.stdout

    def test_loop_promotion_tour(self):
        proc = run_example("loop_promotion_tour.py")
        assert proc.returncode == 0, proc.stderr
        assert "PROMOTABLE" in proc.stdout
        assert "IL after promotion" in proc.stdout
        assert "hits=8 misses=504" in proc.stdout

    def test_pointer_analysis_demo(self):
        proc = run_example("pointer_analysis_demo.py")
        assert proc.returncode == 0, proc.stderr
        assert "Tl" in proc.stdout
        assert "heap@" in proc.stdout
        # the demo's punchline: pointer/promo beats modref/promo
        assert "pointer/promo" in proc.stdout

    def test_memory_traffic_report_single_program(self):
        proc = run_example("memory_traffic_report.py", "allroots")
        assert proc.returncode == 0, proc.stderr
        assert "Figure 5: Total Operations" in proc.stdout
        assert "allroots" in proc.stdout

    def test_memory_traffic_report_rejects_unknown(self):
        proc = run_example("memory_traffic_report.py", "notaprogram")
        assert proc.returncode != 0

"""Pytest configuration: make `tests.helpers` importable from any test."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/snapshots/ from current compiler output "
        "instead of comparing against it",
    )

"""Shared test utilities."""

from __future__ import annotations

from repro.frontend import compile_c
from repro.interp import MachineOptions, RunResult, run_module
from repro.ir.module import Module
from repro.pipeline import (
    ExperimentCell,
    PipelineOptions,
    compile_and_run,
    paper_variants,
)


def run_c(source: str, max_steps: int = 5_000_000, **kwargs) -> RunResult:
    """Compile C and interpret the *unoptimized* module."""
    module = compile_c(source, **kwargs)
    return run_module(module, options=MachineOptions(max_steps=max_steps))


def compile_ir(source: str, **kwargs) -> Module:
    return compile_c(source, **kwargs)


def run_all_variants(
    source: str, max_steps: int = 5_000_000, **kwargs
) -> dict[str, ExperimentCell]:
    """Run the paper's 4 pipeline variants plus the raw module; assert
    that all five produce the same output and exit code.  Returns the four
    optimized cells."""
    raw = run_c(source, max_steps=max_steps)
    cells: dict[str, ExperimentCell] = {}
    for name, options in paper_variants().items():
        cell = compile_and_run(
            source,
            options,
            machine_options=MachineOptions(max_steps=max_steps),
            **kwargs,
        )
        assert cell.output == raw.output, (
            f"{name} output diverged:\n--- raw ---\n{raw.output}"
            f"\n--- {name} ---\n{cell.output}"
        )
        assert cell.exit_code == raw.exit_code, name
        cells[name] = cell
    return cells


def run_optimized(
    source: str,
    options: PipelineOptions | None = None,
    max_steps: int = 5_000_000,
    **kwargs,
) -> ExperimentCell:
    return compile_and_run(
        source,
        options or PipelineOptions(),
        machine_options=MachineOptions(max_steps=max_steps),
        **kwargs,
    )

"""Result cache: key discipline, hit/miss behaviour, and invalidation."""

from dataclasses import replace

from repro.interp import MachineOptions
from repro.pipeline import Analysis, PipelineOptions
from repro.runner.cache import ResultCache, cell_key
from repro.runner.scheduler import CellData, CellFailure, run_cells, spec_cache_key

from tests.runner.helpers import CRASH_SOURCE, GOOD_SOURCE, make_spec


class TestCellKey:
    def test_key_is_deterministic(self):
        a = cell_key(GOOD_SOURCE, {}, PipelineOptions(), MachineOptions())
        b = cell_key(GOOD_SOURCE, {}, PipelineOptions(), MachineOptions())
        assert a == b
        assert len(a) == 64

    def test_key_covers_every_input(self):
        base = cell_key(GOOD_SOURCE, {}, PipelineOptions(), MachineOptions())
        assert base != cell_key(
            GOOD_SOURCE + " ", {}, PipelineOptions(), MachineOptions()
        )
        assert base != cell_key(
            GOOD_SOURCE, {"N": "9"}, PipelineOptions(), MachineOptions()
        )
        assert base != cell_key(
            GOOD_SOURCE,
            {},
            PipelineOptions(analysis=Analysis.POINTER),
            MachineOptions(),
        )
        assert base != cell_key(
            GOOD_SOURCE, {}, PipelineOptions(), MachineOptions(max_steps=7)
        )
        assert base != cell_key(
            GOOD_SOURCE, {}, PipelineOptions(), MachineOptions(), schema_version=99
        )

    def test_key_covers_nested_options(self):
        options = PipelineOptions()
        tweaked = replace(
            options, regalloc=replace(options.regalloc, num_registers=8)
        )
        assert cell_key(GOOD_SOURCE, {}, options, MachineOptions()) != cell_key(
            GOOD_SOURCE, {}, tweaked, MachineOptions()
        )


class TestResultCache:
    def test_warm_run_matches_cold_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cold = run_cells([spec], jobs=1, cache=cache)[spec.key]
        assert not cold.from_cache
        assert cache.misses == 1 and cache.hits == 0

        warm = run_cells([spec], jobs=1, cache=cache)[spec.key]
        assert isinstance(warm, CellData)
        assert warm.from_cache
        assert cache.hits == 1
        assert warm.counters == cold.counters
        assert warm.output == cold.output
        assert warm.exit_code == cold.exit_code

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = make_spec(workload="crasher", source=CRASH_SOURCE)
        first = run_cells([bad], jobs=1, retries=0, cache=cache)[bad.key]
        assert isinstance(first, CellFailure)
        assert len(cache) == 0
        second = run_cells([bad], jobs=1, retries=0, cache=cache)[bad.key]
        assert isinstance(second, CellFailure)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        run_cells([spec], jobs=1, cache=cache)
        path = cache.path_for(spec_cache_key(spec))
        path.write_text("{ not json")
        again = run_cells([spec], jobs=1, cache=cache)[spec.key]
        assert not again.from_cache
        assert again.ok

    def test_clear_invalidates_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        run_cells([spec], jobs=1, cache=cache)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0
        rerun = run_cells([spec], jobs=1, cache=cache)[spec.key]
        assert not rerun.from_cache

    def test_cache_shared_across_job_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = make_spec()
        cold = run_cells([spec], jobs=2, cache=cache)[spec.key]
        warm = run_cells([spec], jobs=1, cache=cache)[spec.key]
        assert warm.from_cache
        assert warm.counters == cold.counters

"""Suite reports: aggregation into figure shapes, graceful degradation of
a whole suite run, and the suite.json serialization."""

import json

import pytest

from repro.errors import ReproError
from repro.harness import figure_rows, format_figure, run_suite
from repro.runner.report import run_suite_report, write_suite_json
from repro.workloads import Workload, register
from repro.workloads.base import _REGISTRY

from tests.runner.helpers import CRASH_SOURCE


@pytest.fixture()
def crashing_workload():
    workload = register(
        Workload(
            name="crasher",
            description="always fails to parse (test injection)",
            source=CRASH_SOURCE,
        )
    )
    yield workload
    _REGISTRY.pop("crasher", None)


class TestSuiteReport:
    @pytest.mark.slow
    def test_small_suite_is_ok(self):
        report = run_suite_report(["allroots", "tsp"], jobs=1)
        assert report.ok
        assert report.exit_code() == 0
        assert sorted(report.results) == ["allroots", "tsp"]
        assert not report.failures
        rows = figure_rows(report.results, "total_ops")
        assert {row.program for row in rows} == {"allroots", "tsp"}

    @pytest.mark.slow
    def test_results_preserve_requested_order(self):
        report = run_suite_report(["tsp", "allroots"], jobs=1)
        assert list(report.results) == ["tsp", "allroots"]

    def test_injected_crash_degrades_gracefully(self, crashing_workload):
        report = run_suite_report(["allroots", "crasher"], jobs=2, retries=0)
        # the healthy program still produced its full matrix...
        assert "allroots" in report.results
        # ...the crasher yielded structured failures, one per variant
        assert {f.workload for f in report.failures} == {"crasher"}
        assert len(report.failures) == 4
        assert all(f.kind == "crash" for f in report.failures)
        assert report.exit_code() == 1
        # and the figure tables render without the crashed program
        table = format_figure(report.results, "total_ops")
        assert "allroots" in table
        assert "crasher" not in table

    def test_suite_json_shape(self, tmp_path, crashing_workload):
        report = run_suite_report(["allroots", "crasher"], jobs=1, retries=0)
        path = tmp_path / "suite.json"
        write_suite_json(path, report)
        payload = json.loads(path.read_text())
        assert payload["ok"] is False
        assert payload["jobs"] == 1
        assert "allroots" in payload["programs"]
        cells = payload["programs"]["allroots"]["cells"]
        assert set(cells) == {
            "modref/nopromo", "modref/promo", "pointer/nopromo", "pointer/promo"
        }
        for cell in cells.values():
            assert cell["counters"]["total_ops"] > 0
            assert cell["exit_code"] == 0
            # cells carry the metrics snapshot the drift gate consumes
            assert cell["metrics"]["interp.total_ops"] == (
                cell["counters"]["total_ops"]
            )
        crash = payload["programs"]["crasher"]["failures"]["modref/promo"]
        assert crash["kind"] == "crash"
        assert crash["attempts"] == 1
        for metric in ("total_ops", "stores", "loads"):
            rows = payload["figures"][metric]
            assert {row["program"] for row in rows} == {"allroots"}
            for row in rows:
                assert row["difference"] == row["without"] - row["with"]

    def test_trace_groups_from_parallel_run(self):
        report = run_suite_report(["allroots"], jobs=2, collect_trace=True)
        groups = report.trace_groups()
        assert set(groups) == {
            f"allroots:{v}"
            for v in (
                "modref/nopromo", "modref/promo", "pointer/nopromo",
                "pointer/promo",
            )
        }
        for events in groups.values():
            assert any(event.name == "promotion" or event.name == "licm"
                       for event in events)


class TestHarnessDelegation:
    def test_run_suite_raises_on_failures(self, crashing_workload):
        with pytest.raises(ReproError, match="crasher"):
            run_suite(["crasher"], retries=0)

    def test_run_suite_keeps_compile_results_inline(self):
        results = run_suite(["allroots"])
        cell = results["allroots"].cells["modref/promo"]
        assert cell.compile_result is not None
        assert cell.compile_result.promotion_reports

"""Scheduler behaviour: parallel fan-out, graceful degradation, retries,
timeouts, and exact parity with serial execution."""

import pytest

from repro.harness import run_suite
from repro.runner.scheduler import CellData, CellFailure, run_cells

from tests.runner.helpers import CRASH_SOURCE, SPIN_SOURCE, make_spec


class TestInline:
    def test_single_cell_succeeds(self):
        spec = make_spec()
        outcomes = run_cells([spec], jobs=1)
        data = outcomes[spec.key]
        assert isinstance(data, CellData)
        assert data.output == "total=300\n"
        assert data.exit_code == 0
        assert data.counters.total_ops > 0
        # inline execution keeps the IR-bearing compile result
        assert data.compile_result is not None

    def test_crash_degrades_to_failure(self):
        bad = make_spec(workload="crasher", source=CRASH_SOURCE)
        good = make_spec()
        outcomes = run_cells([bad, good], jobs=1, retries=0)
        failure = outcomes[bad.key]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "crash"
        assert "parse error" in failure.message
        assert failure.attempts == 1
        assert outcomes[good.key].ok

    def test_retries_are_bounded(self):
        bad = make_spec(workload="crasher", source=CRASH_SOURCE)
        outcomes = run_cells([bad], jobs=1, retries=2)
        assert outcomes[bad.key].attempts == 3

    def test_duplicate_cells_rejected(self):
        spec = make_spec()
        with pytest.raises(ValueError, match="duplicate"):
            run_cells([spec, spec], jobs=1)

    def test_cells_capture_published_metrics(self):
        spec = make_spec()
        data = run_cells([spec], jobs=1)[spec.key]
        assert data.metrics["interp.total_ops"] == data.counters.total_ops
        assert "promotion.tags_promoted" in data.metrics

    def test_metrics_survive_the_cache_round_trip(self):
        spec = make_spec()
        data = run_cells([spec], jobs=1)[spec.key]
        clone = CellData.from_cache_payload(spec, data.cache_payload())
        assert clone.metrics == data.metrics
        assert clone.from_cache


class TestPooled:
    def test_crash_does_not_abort_siblings(self):
        bad = make_spec(workload="crasher", source=CRASH_SOURCE)
        good = make_spec()
        outcomes = run_cells([bad, good], jobs=2, retries=1)
        failure = outcomes[bad.key]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "crash"
        assert failure.attempts == 2
        data = outcomes[good.key]
        assert isinstance(data, CellData)
        assert data.output == "total=300\n"
        # pooled results are slim: no IR crosses the process boundary
        assert data.compile_result is None

    def test_timeout_yields_structured_failure(self):
        # give the spinner several seconds of step fuel (the threaded
        # engine runs ~10M ops/s); the 0.2s budget expires long before
        # and the suite moves on without waiting
        slow = make_spec(
            workload="spinner", source=SPIN_SOURCE, max_steps=200_000_000
        )
        good = make_spec()
        outcomes = run_cells([slow, good], jobs=2, timeout=0.2, retries=1)
        failure = outcomes[slow.key]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "timeout"
        assert "budget" in failure.message
        assert outcomes[good.key].ok

    def test_progress_callback_sees_every_cell(self):
        seen = []
        bad = make_spec(workload="crasher", source=CRASH_SOURCE)
        good = make_spec()
        run_cells(
            [bad, good],
            jobs=2,
            retries=0,
            progress=lambda spec, outcome: seen.append((spec.key, outcome.ok)),
        )
        assert sorted(seen) == [(bad.key, False), (good.key, True)]


class TestSerialParallelParity:
    @pytest.mark.slow
    def test_two_workloads_match_exactly(self):
        names = ["allroots", "dhrystone"]
        serial = run_suite(names, jobs=1)
        parallel = run_suite(names, jobs=2)
        assert set(serial) == set(parallel)
        for name in names:
            assert set(serial[name].cells) == set(parallel[name].cells)
            for variant, cell in serial[name].cells.items():
                other = parallel[name].cells[variant]
                assert cell.counters == other.counters, (name, variant)
                assert cell.output == other.output
                assert cell.exit_code == other.exit_code

"""Telemetry: span nesting, self-time accounting, pipeline integration,
and Chrome-trace export."""

import json
import time

from repro.pipeline import PipelineOptions, compile_and_run
from repro.runner import telemetry
from repro.runner.telemetry import (
    SpanEvent,
    chrome_trace,
    current_trace,
    format_span_summary,
    module_op_breakdown,
    module_op_count,
    span,
    tracing,
)

from tests.runner.helpers import GOOD_SOURCE


class TestSpans:
    def test_span_without_trace_is_a_noop(self):
        assert current_trace() is None
        with span("orphan"):
            pass
        assert current_trace() is None

    def test_spans_nest_with_depths(self):
        with tracing() as trace:
            with span("outer"):
                with span("inner_a"):
                    pass
                with span("inner_b"):
                    pass
        by_name = {event.name: event for event in trace.events}
        assert by_name["outer"].depth == 0
        assert by_name["inner_a"].depth == 1
        assert by_name["inner_b"].depth == 1

    def test_child_time_sums_into_parent(self):
        with tracing() as trace:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.02)
        by_name = {event.name: event for event in trace.events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner.seconds <= outer.seconds
        # self time excludes children: outer's self is its total minus inner
        assert abs(outer.self_seconds - (outer.seconds - inner.seconds)) < 1e-6
        assert trace.total_seconds() >= inner.seconds

    def test_tracing_restores_previous_trace(self):
        with tracing("a") as outer_trace:
            with tracing("b"):
                assert current_trace().name == "b"
            assert current_trace() is outer_trace
        assert current_trace() is None

    def test_event_round_trips_through_dicts(self):
        with tracing() as trace:
            with span("x", answer=42):
                pass
        event = trace.events[0]
        clone = SpanEvent.from_dict(json.loads(json.dumps(event.as_dict())))
        assert clone == event


class TestPipelineIntegration:
    def test_compile_records_per_pass_spans(self):
        with tracing() as trace:
            compile_and_run(GOOD_SOURCE, PipelineOptions())
        names = [event.name for event in trace.events]
        for expected in ("parse", "promotion", "regalloc", "compile", "execute"):
            assert expected in names, expected

    def test_pass_spans_carry_op_deltas(self):
        with tracing() as trace:
            compile_and_run(GOOD_SOURCE, PipelineOptions())
        dce = [event for event in trace.events if event.name == "dce"]
        assert dce, "dce pass should be traced"
        for event in dce:
            assert event.args["ops_after"] == (
                event.args["ops_before"] + event.args["ops_delta"]
            )
        # dead-code elimination never adds operations
        assert all(event.args["ops_delta"] <= 0 for event in dce)

    def test_untraced_compile_records_nothing(self):
        compile_and_run(GOOD_SOURCE, PipelineOptions())
        assert current_trace() is None

    def test_pass_spans_carry_opcode_class_deltas(self):
        with tracing() as trace:
            compile_and_run(GOOD_SOURCE, PipelineOptions())
        deltas = [
            event.args["ops_by_class_delta"]
            for event in trace.events
            if "ops_by_class_delta" in event.args
        ]
        assert deltas, "some pass should change the instruction mix"
        # only nonzero classes are recorded
        for delta in deltas:
            assert all(v != 0 for v in delta.values())
            assert set(delta) <= {
                "loads", "stores", "copies", "calls", "branches", "other"
            }
        # promotion's whole point: some pass removes loads
        assert any(delta.get("loads", 0) < 0 for delta in deltas)


class TestOpBreakdown:
    def test_breakdown_matches_op_count_minus_nops(self):
        from repro.frontend import compile_c
        from repro.ir.instructions import Nop

        module = compile_c(GOOD_SOURCE)
        breakdown = module_op_breakdown(module)
        nops = sum(
            1
            for func in module.functions.values()
            for instr in func.instructions()
            if isinstance(instr, Nop)
        )
        assert sum(breakdown.values()) == module_op_count(module) - nops

    def test_loop_program_has_loads_stores_and_branches(self):
        from repro.frontend import compile_c

        breakdown = module_op_breakdown(compile_c(GOOD_SOURCE))
        assert breakdown["loads"] > 0
        assert breakdown["stores"] > 0
        assert breakdown["branches"] > 0
        assert breakdown["calls"] > 0  # printf


class TestExport:
    def _traced_groups(self):
        with tracing() as trace:
            compile_and_run(GOOD_SOURCE, PipelineOptions())
        return {"good:modref/promo": trace.events}

    def test_chrome_trace_shape(self):
        payload = chrome_trace(self._traced_groups())
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta and complete
        assert meta[0]["args"]["name"] == "good:modref/promo"
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        json.dumps(payload)  # must be serializable

    def test_summary_aggregates_by_span_name(self):
        groups = self._traced_groups()
        summary = format_span_summary(groups)
        assert "promotion" in summary
        assert "ops removed" in summary
        assert "loads removed" in summary

    def test_write_chrome_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        telemetry.write_chrome_trace(out, self._traced_groups())
        assert json.loads(out.read_text())["traceEvents"]

"""Shared fixtures for the runner tests: tiny cell specs that compile in
milliseconds, plus deliberately broken ones."""

from __future__ import annotations

from repro.interp import MachineOptions
from repro.pipeline import PipelineOptions
from repro.runner.scheduler import CellSpec

GOOD_SOURCE = r"""
int total;
int main(void) {
    int i;
    for (i = 0; i < 25; i++) { total += i; }
    printf("total=%d\n", total);
    return 0;
}
"""

#: unparseable — fails in the front end, deterministically
CRASH_SOURCE = "int main( {"

#: runs forever; only the step limit or a scheduler timeout stops it
SPIN_SOURCE = r"""
int main(void) {
    int i;
    for (i = 0; i >= 0; i++) { i = i - 1; i = i + 1; }
    return 0;
}
"""


def make_spec(
    workload: str = "good",
    variant: str = "modref/promo",
    source: str = GOOD_SOURCE,
    max_steps: int = 1_000_000,
    **options,
) -> CellSpec:
    return CellSpec(
        workload=workload,
        variant=variant,
        source=source,
        options=PipelineOptions(**options),
        machine=MachineOptions(max_steps=max_steps),
    )

"""Tests for liveness analysis and def-use chains."""

from repro.analysis.defuse import compute_def_use
from repro.analysis.liveness import compute_liveness, live_across_calls
from repro.ir import (
    BinOp,
    Call,
    Function,
    IRBuilder,
    Opcode,
    Phi,
    VReg,
)


def loop_function():
    """x defined before a loop and used after it stays live through it."""
    func = Function("f")
    b = IRBuilder(func)
    entry = b.start_block("entry")
    x = b.loadi(7, hint="x")
    header = func.new_block(label="H")
    body = func.new_block(label="B")
    exit_ = func.new_block(label="X")
    b.jmp(header)
    b.set_block(header)
    cond = b.loadi(1)
    b.cbr(cond, body, exit_)
    b.set_block(body)
    y = b.loadi(2)
    b.jmp(header)
    b.set_block(exit_)
    b.ret(x)
    return func, x, y


class TestLiveness:
    def test_live_through_loop(self):
        func, x, y = loop_function()
        live = compute_liveness(func)
        assert x in live.live_in["H"]
        assert x in live.live_in["B"]
        assert x in live.live_in["X"]

    def test_dead_after_last_use(self):
        func, x, y = loop_function()
        live = compute_liveness(func)
        assert y not in live.live_out["B"]
        assert x not in live.live_out["X"]

    def test_params_live_in_entry_when_used(self):
        func = Function("g", params=[VReg(0, "a")])
        b = IRBuilder(func)
        b.start_block()
        b.ret(func.params[0])
        live = compute_liveness(func)
        assert func.params[0] in live.live_in[func.entry]

    def test_phi_operand_live_out_of_pred(self):
        func = Function("p")
        b = IRBuilder(func)
        entry = b.start_block("entry")
        v1 = b.loadi(1)
        join = func.new_block(label="J")
        b.jmp(join)
        phi_dst = func.new_vreg()
        join.instrs.append(Phi(phi_dst, {entry.label: v1}))
        b.set_block(join)
        b.ret(phi_dst)
        live = compute_liveness(func)
        assert v1 in live.live_out[entry.label]
        # phi defs are not live-in to their own block
        assert phi_dst not in live.live_in["J"]


class TestLiveAcrossCalls:
    def test_value_held_over_call(self):
        func = Function("h")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(5)
        b.call("printf", [])
        y = b.add(x, x)
        b.ret(y)
        across = live_across_calls(func)
        assert x in across
        assert y not in across


class TestDefUse:
    def test_counts(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(1)
        y = b.add(x, x)
        b.ret(y)
        info = compute_def_use(func)
        assert info.use_count(x) == 2
        assert info.use_count(y) == 1
        assert info.single_def(x) is not None
        assert not info.is_dead(x)

    def test_dead_register(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(1)
        b.ret()
        info = compute_def_use(func)
        assert info.is_dead(x)

    def test_multiple_defs(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(1)
        b.mov(x, dst=x)
        b.ret(x)
        info = compute_def_use(func)
        assert info.single_def(x) is None
        assert len(info.defs[x]) == 2

    def test_params_count_as_defs(self):
        func = Function("f", params=[VReg(0)])
        b = IRBuilder(func)
        b.start_block()
        b.ret(func.params[0])
        info = compute_def_use(func)
        assert info.defs[func.params[0]] == [("<param>", -1)]

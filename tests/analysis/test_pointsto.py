"""Tests for the points-to analysis and its application to tag sets."""

from repro.analysis.modref import run_modref
from repro.analysis.pointsto import apply_points_to, run_points_to
from repro.frontend import compile_c
from repro.ir import Call, MemLoad, MemStore


def find_tag(module, name):
    for tag in module.memory_tags():
        if tag.name == name:
            return tag
    raise AssertionError(f"no tag {name}")


def pointer_ops(func):
    return [i for i in func.instructions() if isinstance(i, (MemLoad, MemStore))]


class TestBasicFlow:
    def test_address_of_global(self):
        src = r"""
        int x;
        int *p;
        int main(void) { p = &x; return *p; }
        """
        module = compile_c(src)
        result = run_points_to(module)
        x = find_tag(module, "x")
        main = module.functions["main"]
        loads = [i for i in main.instructions() if isinstance(i, MemLoad)]
        assert loads
        pts = result.of_reg("main", loads[0].addr)
        assert pts == frozenset({x})

    def test_flow_through_assignment_chain(self):
        src = r"""
        int a;
        int b;
        int main(void) {
            int *p;
            int *q;
            p = &a;
            q = p;
            *q = 4;
            q = &b;
            *q = 5;
            return a + b;
        }
        """
        module = compile_c(src)
        result = run_points_to(module)
        a = find_tag(module, "a")
        b = find_tag(module, "b")
        main = module.functions["main"]
        stores = [i for i in main.instructions() if isinstance(i, MemStore)]
        # flow-insensitive: q may point at either a or b at both stores
        for store in stores:
            pts = result.of_reg("main", store.addr)
            assert pts <= {a, b}
            assert pts  # never empty here

    def test_heap_named_by_call_site(self):
        src = r"""
        int main(void) {
            int *p;
            int *q;
            p = (int *) malloc(8);
            q = (int *) malloc(8);
            *p = 1;
            *q = 2;
            return *p + *q;
        }
        """
        module = compile_c(src)
        result = run_points_to(module)
        main = module.functions["main"]
        stores = [i for i in main.instructions() if isinstance(i, MemStore)]
        pts_sets = [result.of_reg("main", s.addr) for s in stores]
        assert all(len(p) == 1 for p in pts_sets)
        # two different call sites -> two different heap names
        assert pts_sets[0] != pts_sets[1]
        assert all(next(iter(p)).kind.value == "heap" for p in pts_sets)

    def test_interprocedural_parameter_binding(self):
        src = r"""
        int g;
        void set(int *p) { *p = 9; }
        int main(void) { set(&g); return g; }
        """
        module = compile_c(src)
        result = run_points_to(module)
        g = find_tag(module, "g")
        set_fn = module.functions["set"]
        stores = [i for i in set_fn.instructions() if isinstance(i, MemStore)]
        assert result.of_reg("set", stores[0].addr) == frozenset({g})

    def test_contents_tracking_through_memory(self):
        src = r"""
        int x;
        int *cell;
        int **pp;
        int main(void) {
            cell = &x;
            pp = &cell;
            **pp = 3;
            return x;
        }
        """
        module = compile_c(src)
        result = run_points_to(module)
        x = find_tag(module, "x")
        cell = find_tag(module, "cell")
        assert result.contents.get(cell) == frozenset({x})

    def test_pointer_arithmetic_flows(self):
        src = r"""
        int arr[10];
        int main(void) {
            int *p;
            p = arr + 3;
            return *p;
        }
        """
        module = compile_c(src)
        result = run_points_to(module)
        arr = find_tag(module, "arr")
        main = module.functions["main"]
        loads = [i for i in main.instructions() if isinstance(i, MemLoad)]
        assert arr in result.of_reg("main", loads[0].addr)


class TestApplication:
    def test_sharper_than_modref(self):
        """The paper's mlink scenario: points-to proves stores through a
        heap pointer cannot modify an address-taken global."""
        src = r"""
        double Tl;
        double *X2;
        void setup(void) {
            double *p;
            p = &Tl;
            *p = 0.5;
            X2 = (double *) malloc(80);
        }
        int main(void) {
            int i;
            setup();
            for (i = 0; i < 10; i++) {
                X2[i] = Tl * 2.0;
            }
            return 0;
        }
        """
        module = compile_c(src)
        first = run_modref(module)
        tl = find_tag(module, "Tl")
        main = module.functions["main"]
        stores_before = [
            i for i in main.instructions() if isinstance(i, MemStore)
        ]
        # MOD/REF alone: the X2 store may touch the address-taken Tl
        assert any(tl in s.tags for s in stores_before)

        points = run_points_to(module)
        apply_points_to(module, points, first.visible)
        stores_after = [
            i for i in main.instructions() if isinstance(i, MemStore)
        ]
        assert all(tl not in s.tags for s in stores_after)

    def test_empty_points_to_falls_back(self):
        # a pointer conjured from an integer has no points-to set; the op
        # must keep a conservative tag set rather than an empty one
        src = r"""
        int g;
        int main(void) {
            int *p;
            p = &g;
            return *p;
        }
        """
        module = compile_c(src)
        first = run_modref(module)
        points = run_points_to(module)
        apply_points_to(module, points, first.visible)
        main = module.functions["main"]
        for op in pointer_ops(main):
            assert not op.tags.is_empty()

"""Tests for SSA construction and destruction."""

from repro.analysis.ssa import construct_ssa, destruct_ssa
from repro.frontend import compile_c
from repro.interp import run_module
from repro.ir import Function, IRBuilder, Mov, Phi, verify_function


def loop_counter_function() -> Function:
    """i = 0; while (i < 10) i = i + 1; return i  — in raw IL."""
    func = Function("count")
    b = IRBuilder(func)
    entry = b.start_block("entry")
    i = b.loadi(0, hint="i")
    header = func.new_block(label="H")
    body = func.new_block(label="B")
    exit_ = func.new_block(label="X")
    b.jmp(header)

    b.set_block(header)
    ten = b.loadi(10)
    from repro.ir import BinOp, Opcode

    cond = func.new_vreg()
    header.append(BinOp(Opcode.CMP_LT, cond, i, ten))
    b.cbr(cond, body, exit_)

    b.set_block(body)
    one = b.loadi(1)
    tmp = b.add(i, one)
    b.mov(tmp, dst=i)
    b.jmp(header)

    b.set_block(exit_)
    b.ret(i)
    return func


class TestConstructSSA:
    def test_single_assignment_holds(self):
        func = loop_counter_function()
        construct_ssa(func)
        verify_function(func, ssa=True)

    def test_phi_placed_at_loop_header(self):
        func = loop_counter_function()
        construct_ssa(func)
        header_phis = func.block("H").phis()
        assert len(header_phis) >= 1

    def test_straightline_needs_no_phis(self):
        func = Function("s")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(1)
        y = b.add(x, x)
        b.ret(y)
        construct_ssa(func)
        assert not any(isinstance(i, Phi) for i in func.instructions())
        verify_function(func, ssa=True)

    def test_origin_tracks_versions(self):
        func = loop_counter_function()
        info = construct_ssa(func)
        # every new name maps back to some original register
        for block in func.blocks.values():
            for phi in block.phis():
                assert info.origin_of(phi.dst) is not None


class TestDestructSSA:
    def test_round_trip_preserves_semantics(self):
        src = r"""
        int main(void) {
            int i;
            int total;
            total = 0;
            for (i = 0; i < 10; i++) {
                if (i % 2 == 0) {
                    total += i;
                } else {
                    total += 2 * i;
                }
            }
            printf("%d\n", total);
            return total;
        }
        """
        module = compile_c(src)
        expected = run_module(module)

        module2 = compile_c(src)
        for func in module2.functions.values():
            construct_ssa(func)
            verify_function(func, ssa=True)
            destruct_ssa(func)
            verify_function(func)
            assert not any(isinstance(i, Phi) for i in func.instructions())
        actual = run_module(module2)
        assert actual.output == expected.output
        assert actual.exit_code == expected.exit_code

    def test_swap_problem_handled(self):
        # a, b = b, a in a loop: phi cycle requiring parallel-copy temps
        src = r"""
        int main(void) {
            int a;
            int b;
            int t;
            int i;
            a = 1;
            b = 2;
            for (i = 0; i < 5; i++) {
                t = a;
                a = b;
                b = t;
            }
            printf("%d %d\n", a, b);
            return 0;
        }
        """
        module = compile_c(src)
        expected = run_module(module)
        module2 = compile_c(src)
        for func in module2.functions.values():
            construct_ssa(func)
            destruct_ssa(func)
            verify_function(func)
        actual = run_module(module2)
        assert actual.output == expected.output == "2 1\n"

"""Tests for interprocedural MOD/REF analysis."""

from repro.analysis.modref import run_modref
from repro.frontend import compile_c
from repro.ir import Call, MemLoad, MemStore, ScalarStore


def find_tag(module, name):
    for tag in module.memory_tags():
        if tag.name == name:
            return tag
    raise AssertionError(f"no tag {name}")


class TestSummaries:
    def test_direct_effects(self):
        src = r"""
        int g;
        int h;
        void writer(void) { g = 1; }
        int reader(void) { return h; }
        int main(void) { writer(); return reader(); }
        """
        module = compile_c(src)
        result = run_modref(module)
        g = find_tag(module, "g")
        h = find_tag(module, "h")
        assert g in result.summaries["writer"].mod
        assert g not in result.summaries["writer"].ref
        assert h in result.summaries["reader"].ref
        assert h not in result.summaries["reader"].mod

    def test_transitive_effects(self):
        src = r"""
        int g;
        void inner(void) { g = 1; }
        void outer(void) { inner(); }
        int main(void) { outer(); return g; }
        """
        module = compile_c(src)
        result = run_modref(module)
        g = find_tag(module, "g")
        assert g in result.summaries["outer"].mod
        assert g in result.summaries["main"].mod

    def test_recursive_scc_shares_summary(self):
        src = r"""
        int depth;
        void ping(int n);
        void pong(int n) { depth = depth + 1; if (n > 0) { ping(n - 1); } }
        void ping(int n) { if (n > 0) { pong(n - 1); } }
        int main(void) { ping(4); return depth; }
        """
        module = compile_c(src)
        result = run_modref(module)
        depth = find_tag(module, "depth")
        assert result.summaries["ping"] is result.summaries["pong"]
        assert depth in result.summaries["ping"].mod


class TestCallSiteRewriting:
    def test_call_sets_shrunk(self):
        src = r"""
        int g;
        void touch(void) { g = g + 1; }
        int main(void) { touch(); return g; }
        """
        module = compile_c(src)
        run_modref(module)
        main = module.functions["main"]
        calls = [i for i in main.instructions() if isinstance(i, Call)
                 and i.callee == "touch"]
        assert len(calls) == 1
        call = calls[0]
        assert not call.mod.universal
        g = find_tag(module, "g")
        assert set(call.mod) == {g}
        assert set(call.ref) == {g}

    def test_pure_intrinsic_calls_stay_empty(self):
        src = r"""
        int main(void) {
            double x;
            x = sqrt(2.0);
            printf("%f\n", x);
            return 0;
        }
        """
        module = compile_c(src)
        run_modref(module)
        for instr in module.functions["main"].instructions():
            if isinstance(instr, Call):
                assert instr.mod.is_empty()
                assert instr.ref.is_empty()


class TestPointerOperationLimiting:
    def test_only_address_taken_tags_in_pointer_ops(self):
        src = r"""
        int taken;
        int not_taken;
        int *p;
        int main(void) {
            p = &taken;
            *p = 5;
            not_taken = 1;
            return *p + not_taken;
        }
        """
        module = compile_c(src)
        run_modref(module)
        taken = find_tag(module, "taken")
        not_taken = find_tag(module, "not_taken")
        main = module.functions["main"]
        pointer_ops = [
            i for i in main.instructions()
            if isinstance(i, (MemLoad, MemStore))
        ]
        assert pointer_ops, "expected pointer-based operations"
        for op in pointer_ops:
            assert not op.tags.universal
            assert taken in op.tags
            assert not_taken not in op.tags

    def test_locals_only_visible_in_descendants(self):
        src = r"""
        int use(int *p) { return *p; }
        int unrelated(void) {
            int q[2];
            q[0] = 1;
            return q[0];
        }
        int main(void) {
            int x;
            int r;
            x = 3;
            r = use(&x);
            return r + unrelated();
        }
        """
        module = compile_c(src)
        result = run_modref(module)
        x = find_tag(module, "main.x")
        # use() is called from main, so main.x is visible there ...
        assert x in result.visible["use"]
        # ... but unrelated() is not below main in a path that matters?
        # unrelated *is* called from main, hence a descendant of main, so
        # the local is visible; a sibling that main never calls is not:
        assert x in result.visible["unrelated"]
        assert x in result.visible["main"]

    def test_local_invisible_to_non_descendant(self):
        src = r"""
        int helper(int *p) { return *p; }
        int standalone(void) { return 7; }
        int main(void) {
            int x;
            x = 1;
            if (standalone()) { return helper(&x); }
            return 0;
        }
        """
        module = compile_c(src)
        result = run_modref(module)
        x = find_tag(module, "main.x")
        assert x in result.visible["helper"]
        # standalone never transitively reaches main's frame creation...
        # it *is* called by main, hence a descendant; create a true
        # non-descendant instead:
        assert x in result.visible["standalone"]


class TestLeafPurity:
    def test_leaf_with_no_memory_ops_has_empty_summary(self):
        src = r"""
        int add(int a, int b) { return a + b; }
        int main(void) { return add(1, 2); }
        """
        module = compile_c(src)
        result = run_modref(module)
        assert not result.summaries["add"].mod
        assert not result.summaries["add"].ref

"""Tests for tag refinement (opcode strengthening)."""

from repro.analysis.callgraph import build_call_graph, condense_sccs
from repro.analysis.modref import run_modref
from repro.analysis.pointsto import apply_points_to, run_points_to
from repro.analysis.tagrefine import refine_memory_ops
from repro.frontend import compile_c
from repro.interp import run_module
from repro.ir import MemLoad, MemStore, ScalarLoad, ScalarStore


def analyzed(src):
    module = compile_c(src)
    first = run_modref(module)
    points = run_points_to(module)
    apply_points_to(module, points, first.visible)
    result = run_modref(module)
    return module, result


class TestStrengthening:
    def test_singleton_global_scalar_becomes_scalar_op(self):
        src = r"""
        int g;
        int main(void) {
            int *p;
            p = &g;
            *p = 7;
            return *p;
        }
        """
        module, result = analyzed(src)
        stats = refine_memory_ops(module, result.sccs)
        assert stats.loads_strengthened >= 1
        assert stats.stores_strengthened >= 1
        main = module.functions["main"]
        assert not any(
            isinstance(i, (MemLoad, MemStore)) for i in main.instructions()
        )
        run = run_module(module)
        assert run.exit_code == 7

    def test_aggregate_singleton_not_strengthened(self):
        src = r"""
        int arr[4];
        int main(void) {
            arr[2] = 5;
            return arr[2];
        }
        """
        module, result = analyzed(src)
        stats = refine_memory_ops(module, result.sccs)
        assert stats.loads_strengthened == 0
        assert stats.stores_strengthened == 0

    def test_multi_tag_not_strengthened(self):
        src = r"""
        int a;
        int b;
        int main(void) {
            int *p;
            if (a) { p = &a; } else { p = &b; }
            *p = 3;
            return a + b;
        }
        """
        module, result = analyzed(src)
        before = sum(
            1 for i in module.functions["main"].instructions()
            if isinstance(i, MemStore)
        )
        stats = refine_memory_ops(module, result.sccs)
        after = sum(
            1 for i in module.functions["main"].instructions()
            if isinstance(i, MemStore)
        )
        assert before == after  # |tags| = 2: untouched
        assert stats.stores_strengthened == 0

    def test_recursive_function_local_not_strengthened(self):
        src = r"""
        int walk(int n) {
            int slot;
            int *p;
            slot = n;
            p = &slot;
            *p = *p + 1;
            if (n > 0) { return walk(n - 1) + *p; }
            return *p;
        }
        int main(void) { return walk(3); }
        """
        module, result = analyzed(src)
        stats = refine_memory_ops(module, result.sccs)
        walk = module.functions["walk"]
        # the local's tag stands for many activations at once: general
        # operations must survive in the recursive function
        assert any(
            isinstance(i, (MemLoad, MemStore)) for i in walk.instructions()
        )

    def test_nonrecursive_local_strengthened(self):
        src = r"""
        int main(void) {
            int slot;
            int *p;
            p = &slot;
            *p = 41;
            return *p + 1;
        }
        """
        module, result = analyzed(src)
        stats = refine_memory_ops(module, result.sccs)
        assert stats.stores_strengthened >= 1
        run = run_module(module)
        assert run.exit_code == 42

    def test_semantics_preserved_after_refinement(self):
        src = r"""
        int g;
        int h;
        int *sel;
        int pick(int which) {
            if (which) { sel = &g; } else { sel = &h; }
            *sel = which + 10;
            return *sel;
        }
        int main(void) {
            int a;
            int b;
            a = pick(1);
            b = pick(0);
            printf("%d %d %d %d\n", a, b, g, h);
            return 0;
        }
        """
        module, result = analyzed(src)
        expected = run_module(compile_c(src)).output
        refine_memory_ops(module, result.sccs)
        assert run_module(module).output == expected == "11 10 11 10\n"

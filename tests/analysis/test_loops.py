"""Tests for natural-loop discovery and landing-pad/exit normalization."""

import pytest

from repro.analysis.loops import find_loops, normalize_loops
from repro.ir import Function, IRBuilder, verify_function
from repro.ir.cfg import predecessors

from tests.analysis.test_dominators import build_cfg


class TestFindLoops:
    def test_no_loops(self):
        func = build_cfg({"A": ("B",), "B": ()}, "A")
        forest = find_loops(func)
        assert forest.loops == []

    def test_single_loop(self):
        func = build_cfg(
            {"A": ("H",), "H": ("B", "X"), "B": ("H",), "X": ()}, "A"
        )
        forest = find_loops(func)
        assert len(forest.loops) == 1
        loop = forest.loops[0]
        assert loop.header == "H"
        assert loop.blocks == {"H", "B"}
        assert loop.latches == ["B"]
        assert loop.depth == 1
        assert loop.is_outermost()

    def test_nested_loops(self):
        func = build_cfg(
            {
                "A": ("H1",),
                "H1": ("H2", "X"),
                "H2": ("B", "L1"),
                "B": ("H2",),
                "L1": ("H1",),
                "X": (),
            },
            "A",
        )
        forest = find_loops(func)
        assert len(forest.loops) == 2
        outer = forest.loop_with_header("H1")
        inner = forest.loop_with_header("H2")
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.depth == 1 and inner.depth == 2
        assert inner.blocks < outer.blocks
        assert forest.innermost["B"] is inner
        assert forest.innermost["L1"] is outer
        assert forest.depth_of("B") == 2
        assert forest.depth_of("A") == 0

    def test_two_latches_merge(self):
        func = build_cfg(
            {
                "A": ("H",),
                "H": ("B1", "X"),
                "B1": ("H", "B2"),
                "B2": ("H",),
                "X": (),
            },
            "A",
        )
        forest = find_loops(func)
        assert len(forest.loops) == 1
        assert set(forest.loops[0].latches) == {"B1", "B2"}

    def test_exit_edges(self):
        func = build_cfg(
            {"A": ("H",), "H": ("B", "X"), "B": ("H", "Y"), "X": (), "Y": ()},
            "A",
        )
        forest = find_loops(func)
        loop = forest.loops[0]
        assert set(loop.exit_edges(func)) == {("H", "X"), ("B", "Y")}
        assert set(loop.exit_blocks(func)) == {"X", "Y"}

    def test_orders(self):
        func = build_cfg(
            {
                "A": ("H1",),
                "H1": ("H2", "X"),
                "H2": ("B", "L1"),
                "B": ("H2",),
                "L1": ("H1",),
                "X": (),
            },
            "A",
        )
        forest = find_loops(func)
        outermost = forest.loops_outermost_first()
        assert [l.header for l in outermost] == ["H1", "H2"]
        innermost = forest.loops_innermost_first()
        assert [l.header for l in innermost] == ["H2", "H1"]


class TestNormalizeLoops:
    def test_landing_pad_created(self):
        # header H has two outside predecessors A and Z
        func = build_cfg(
            {"A": ("H", "Z"), "Z": ("H",), "H": ("B", "X"), "B": ("H",), "X": ()},
            "A",
        )
        forest = normalize_loops(func)
        loop = forest.loop_with_header("H")
        pad = loop.preheader(func)
        preds = predecessors(func)
        outside = [p for p in preds["H"] if p not in loop.blocks]
        assert outside == [pad]
        assert func.block(pad).successors() == ("H",)
        verify_function(func)

    def test_dedicated_exits(self):
        # exit target X is also reachable from outside the loop
        func = build_cfg(
            {
                "A": ("H", "X"),
                "H": ("B", "X"),
                "B": ("H",),
                "X": (),
            },
            "A",
        )
        forest = normalize_loops(func)
        loop = forest.loop_with_header("H")
        preds = predecessors(func)
        for exit_block in loop.exit_blocks(func):
            assert all(p in loop.blocks for p in preds[exit_block])
        verify_function(func)

    def test_entry_header_gets_pad(self):
        # the loop header is the function entry: a new entry pad appears
        func = build_cfg({"H": ("B", "X"), "B": ("H",), "X": ()}, "H")
        forest = normalize_loops(func)
        assert func.entry != "H"
        loop = forest.loop_with_header("H")
        assert loop.preheader(func) == func.entry
        verify_function(func)

    def test_idempotent(self):
        func = build_cfg(
            {"A": ("H",), "H": ("B", "X"), "B": ("H",), "X": ()}, "A"
        )
        normalize_loops(func)
        blocks_after_first = set(func.blocks)
        normalize_loops(func)
        assert set(func.blocks) == blocks_after_first

    def test_nested_exits_shared(self):
        # inner loop's break target lies outside both loops
        func = build_cfg(
            {
                "A": ("H1",),
                "H1": ("H2", "X"),
                "H2": ("B", "L1"),
                "B": ("H2", "OUT"),   # break straight out of both loops
                "L1": ("H1",),
                "OUT": (),
                "X": (),
            },
            "A",
        )
        forest = normalize_loops(func)
        inner = forest.loop_with_header("H2")
        outer = forest.loop_with_header("H1")
        preds = predecessors(func)
        for loop in (inner, outer):
            for exit_block in loop.exit_blocks(func):
                assert all(p in loop.blocks for p in preds[exit_block]), (
                    loop.header,
                    exit_block,
                )
        verify_function(func)

    def test_preheader_query_requires_normalization(self):
        func = build_cfg(
            {"A": ("H", "Z"), "Z": ("H",), "H": ("B", "X"), "B": ("H",), "X": ()},
            "A",
        )
        forest = find_loops(func)
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            forest.loop_with_header("H").preheader(func)

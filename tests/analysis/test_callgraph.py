"""Tests for call-graph construction and SCC condensation."""

from repro.analysis.callgraph import build_call_graph, condense_sccs
from repro.frontend import compile_c


MUTUAL = r"""
int is_odd(int n);

int is_even(int n) {
    if (n == 0) { return 1; }
    return is_odd(n - 1);
}

int is_odd(int n) {
    if (n == 0) { return 0; }
    return is_even(n - 1);
}

int leaf(int x) { return x * 2; }

int main(void) {
    return is_even(10) + leaf(3);
}
"""


class TestCallGraph:
    def test_edges(self):
        module = compile_c(MUTUAL)
        graph = build_call_graph(module)
        assert graph.callees["main"] == {"is_even", "leaf"}
        assert graph.callees["is_even"] == {"is_odd"}
        assert graph.callees["is_odd"] == {"is_even"}
        assert graph.callees["leaf"] == set()
        assert graph.callers["leaf"] == {"main"}

    def test_external_callees(self):
        src = r"""
        int main(void) { printf("x\n"); return 0; }
        """
        module = compile_c(src)
        graph = build_call_graph(module)
        assert "printf" in graph.external_callees["main"]
        assert graph.callees["main"] == set()


class TestSCC:
    def test_mutual_recursion_one_component(self):
        module = compile_c(MUTUAL)
        graph = build_call_graph(module)
        sccs = condense_sccs(graph)
        even = sccs.component_of["is_even"]
        odd = sccs.component_of["is_odd"]
        assert even == odd
        assert sccs.is_recursive("is_even")
        assert sccs.is_recursive("is_odd")
        assert not sccs.is_recursive("leaf")
        assert not sccs.is_recursive("main")

    def test_reverse_topological_order(self):
        module = compile_c(MUTUAL)
        graph = build_call_graph(module)
        sccs = condense_sccs(graph)
        # callees appear in earlier components than their callers
        position = {name: idx for idx, comp in enumerate(sccs.components)
                    for name in comp}
        for caller, callees in graph.callees.items():
            for callee in callees:
                if position[callee] != position[caller]:
                    assert position[callee] < position[caller]

    def test_self_recursion(self):
        src = r"""
        int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
        int main(void) { return fact(5); }
        """
        module = compile_c(src)
        sccs = condense_sccs(build_call_graph(module))
        assert sccs.is_recursive("fact")
        assert not sccs.is_recursive("main")

    def test_component_count(self):
        module = compile_c(MUTUAL)
        sccs = condense_sccs(build_call_graph(module))
        # {is_even,is_odd}, {leaf}, {main}
        assert len(sccs.components) == 3

"""Tests for Lengauer-Tarjan dominators and dominance frontiers.

Includes a cross-check against networkx's immediate_dominators on random
CFGs — an independent oracle for the Lengauer-Tarjan implementation.
"""

import random

import networkx as nx
import pytest

from repro.analysis.dominators import compute_dominators, dominance_frontiers
from repro.ir import Branch, Function, IRBuilder, Jump, Ret


def build_cfg(edges: dict[str, tuple[str, ...]], entry: str) -> Function:
    """Build a function whose CFG matches the given successor map."""
    func = Function("g")
    order = [entry] + [n for n in edges if n != entry]
    for label in order:
        func.new_block(label=label)
    func.entry = entry
    cond = func.new_vreg()
    for label, succs in edges.items():
        block = func.block(label)
        if len(succs) == 0:
            block.append(Ret())
        elif len(succs) == 1:
            block.append(Jump(succs[0]))
        elif len(succs) == 2:
            block.append(Branch(cond, succs[0], succs[1]))
        else:
            raise AssertionError("at most two successors")
    return func


class TestClassicShapes:
    def test_straight_line(self):
        func = build_cfg({"A": ("B",), "B": ("C",), "C": ()}, "A")
        dom = compute_dominators(func)
        assert dom.idom == {"A": "A", "B": "A", "C": "B"}

    def test_diamond(self):
        func = build_cfg(
            {"A": ("B", "C"), "B": ("D",), "C": ("D",), "D": ()}, "A"
        )
        dom = compute_dominators(func)
        assert dom.idom["D"] == "A"
        assert dom.dominates("A", "D")
        assert not dom.dominates("B", "D")

    def test_loop(self):
        func = build_cfg(
            {"A": ("H",), "H": ("B", "X"), "B": ("H",), "X": ()}, "A"
        )
        dom = compute_dominators(func)
        assert dom.idom["B"] == "H"
        assert dom.idom["X"] == "H"
        assert dom.dominates("H", "B")

    def test_lengauer_tarjan_paper_example(self):
        # the example graph from the 1979 paper (figure 1)
        edges = {
            "R": ("A", "B", "C"),
            "A": ("D",),
            "B": ("A", "D", "E"),
            "C": ("F", "G"),
            "D": ("L",),
            "E": ("H",),
            "F": ("I",),
            "G": ("I", "J"),
            "H": ("E", "K"),
            "I": ("K",),
            "J": ("I",),
            "K": ("I", "R"),
            "L": ("H",),
        }
        # our blocks support <=2 successors; expand fan-outs via networkx
        # oracle comparison instead on a random graph (below); here test a
        # reduced variant with <=2-way branches
        edges = {
            "R": ("A", "B"),
            "A": ("D",),
            "B": ("D", "E"),
            "D": ("L",),
            "E": ("H",),
            "H": ("E", "K"),
            "K": ("R",),
            "L": ("H",),
        }
        func = build_cfg(edges, "R")
        dom = compute_dominators(func)
        assert dom.idom["D"] == "R"
        assert dom.idom["H"] == "R"
        assert dom.idom["K"] == "H"

    def test_unreachable_blocks_excluded(self):
        func = build_cfg({"A": ("B",), "B": (), "Z": ("B",)}, "A")
        dom = compute_dominators(func)
        assert "Z" not in dom.idom

    def test_depths_and_strict_dominance(self):
        func = build_cfg({"A": ("B",), "B": ("C",), "C": ()}, "A")
        dom = compute_dominators(func)
        assert dom.depth == {"A": 0, "B": 1, "C": 2}
        assert dom.strictly_dominates("A", "C")
        assert not dom.strictly_dominates("C", "C")
        assert dom.dominates("C", "C")

    def test_dom_tree_preorder_starts_at_entry(self):
        func = build_cfg(
            {"A": ("B", "C"), "B": ("D",), "C": ("D",), "D": ()}, "A"
        )
        dom = compute_dominators(func)
        order = dom.dom_tree_preorder()
        assert order[0] == "A"
        assert set(order) == {"A", "B", "C", "D"}


class TestDominanceFrontiers:
    def test_diamond_frontier(self):
        func = build_cfg(
            {"A": ("B", "C"), "B": ("D",), "C": ("D",), "D": ()}, "A"
        )
        frontiers = dominance_frontiers(func)
        assert frontiers["B"] == {"D"}
        assert frontiers["C"] == {"D"}
        assert frontiers["A"] == set()

    def test_loop_header_in_own_frontier(self):
        func = build_cfg(
            {"A": ("H",), "H": ("B", "X"), "B": ("H",), "X": ()}, "A"
        )
        frontiers = dominance_frontiers(func)
        assert "H" in frontiers["B"]
        assert "H" in frontiers["H"]  # the header's frontier includes itself


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_cfg_matches_networkx(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 24)
        labels = [f"N{i}" for i in range(n)]
        edges: dict[str, tuple[str, ...]] = {}
        for i, label in enumerate(labels):
            fanout = rng.randint(0, 2)
            succs = tuple(
                rng.choice(labels) for _ in range(fanout)
            )
            if len(succs) == 2 and succs[0] == succs[1]:
                succs = (succs[0],)
            edges[label] = succs
        func = build_cfg(edges, "N0")
        dom = compute_dominators(func)

        graph = nx.DiGraph()
        graph.add_nodes_from(labels)
        for src, succs in edges.items():
            for dst in succs:
                graph.add_edge(src, dst)
        expected = dict(nx.immediate_dominators(graph, "N0"))
        expected["N0"] = "N0"  # normalize: we map the entry to itself
        assert dom.idom == expected

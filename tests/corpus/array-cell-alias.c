/* Two pointers into the same array that sometimes alias the same cell.
   Stores through one must be visible through the other; promotion of
   the cells requires the analysis to prove (or refuse to prove)
   distinctness. */
long arr[8];
int main(void) {
    long acc = 0;
    long i;
    long *p = &arr[2];
    long *q = &arr[2];
    long *r = &arr[5];
    for (i = 0; i < 8; i++) {
        *p = *p + i;
        acc += *q;
        *r = *r + *q;
        acc ^= arr[(i & 7)];
    }
    for (i = 0; i < 8; i++) {
        printf("arr %ld\n", arr[i]);
    }
    printf("acc %ld\n", acc);
    return (int)(acc & 63);
}

/* The dual of call-mod-global: the loop stores g, the callee only
   *reads* it.  REF forces the promoted value to be visible in memory at
   the call (or the call to see the register copy) — either way the
   callee must observe every increment. */
long g = 10;
long peek(long k) {
    return g * 2 + k;
}
int main(void) {
    long acc = 0;
    long i;
    for (i = 0; i < 7; i++) {
        g = g + 3;
        acc += peek(i);
    }
    printf("acc %ld\n", acc);
    printf("g %ld\n", g);
    return (int)(acc & 63);
}

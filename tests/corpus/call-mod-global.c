/* A callee that writes the global a loop is accumulating into.
   MOD analysis must keep g in B_AMBIGUOUS for the loop, so promotion
   may not cache it in a register across the call — exactly the
   miscompile the unsafe_ignore_call_ambiguity flag injects. */
long g = 0;
long bump(long k) {
    g += k;
    return g;
}
int main(void) {
    long acc = 0;
    long i;
    for (i = 0; i < 8; i++) {
        g = g + 1;
        acc += bump(i);
    }
    printf("acc %ld\n", acc);
    printf("g %ld\n", g);
    return (int)(acc & 63);
}

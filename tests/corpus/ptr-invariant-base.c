/* Pointer stores through a loop-invariant base (section 3.3): after
   LICM exposes that p never changes inside the loop, pointer promotion
   may forward *p through a register — but only with the pointer
   analysis to prove p's target, and the exit store must still land. */
long g = 100;
long other = 7;
int main(void) {
    long acc = 0;
    long i;
    long *p = &g;
    for (i = 0; i < 9; i++) {
        *p = *p + i;
        acc += *p + other;
    }
    printf("g %ld\n", g);
    printf("acc %ld\n", acc);
    return (int)(acc & 63);
}

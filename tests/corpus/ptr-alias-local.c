/* An address-taken local updated both directly and through its alias in
   the same loop.  The direct stores look promotable; the pointer stores
   make the tag ambiguous — promotion must reconcile both views. */
int main(void) {
    long m = 3;
    long acc = 0;
    long i;
    long *p = &m;
    for (i = 0; i < 6; i++) {
        m += 2;
        *p = *p + 1;
        acc += m;
    }
    printf("m %ld\n", m);
    printf("acc %ld\n", acc);
    return (int)(acc & 63);
}

/* A loop whose body never runs.  Promotion's landing-pad load and exit
   store execute anyway — the classic case where promotion legally
   *increases* dynamic memory traffic and must not change the value. */
long g = 5;
int main(void) {
    long acc = 0;
    long i;
    for (i = 0; i < 0; i++) {
        g += 1;
        acc += g;
    }
    for (i = 3; i < 4; i++) {
        g += 10;
        acc += g;
    }
    printf("g %ld\n", g);
    printf("acc %ld\n", acc);
    return (int)(acc & 63);
}

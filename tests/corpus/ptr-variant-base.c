/* A pointer retargeted *inside* the loop: the base is loop-variant, so
   pointer promotion must refuse, and plain promotion must treat both
   g0 and g1 as ambiguously written. */
long g0 = 1;
long g1 = 2;
int main(void) {
    long acc = 0;
    long i;
    long *p = &g0;
    for (i = 0; i < 10; i++) {
        *p = *p + 1;
        if (i & 1) {
            p = &g1;
        } else {
            p = &g0;
        }
        acc += g0 + g1;
    }
    printf("g0 %ld\n", g0);
    printf("g1 %ld\n", g1);
    printf("acc %ld\n", acc);
    return (int)(acc & 63);
}

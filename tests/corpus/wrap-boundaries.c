/* Arithmetic at the 64-bit wrap boundaries: INT64_MIN / -1 (guarded),
   INT64_MAX + 1, shift counts at and past 63, truncating division of
   negatives.  Every variant must agree on the wrapped values. */
long big = 9223372036854775807L;
long tiny = (-9223372036854775807L - 1);
int main(void) {
    long acc = 0;
    long d = -1;
    long i;
    for (i = 0; i < 4; i++) {
        acc += big + 1;
        acc ^= (d != 0 ? tiny / d : tiny);
        acc += (d != 0 ? tiny % d : 0);
        acc ^= (1L << ((63 + i) & 31));
        acc += (tiny >> (63 & 31));
        acc += (-7) / 2;
        acc += (-7) % 2;
        acc += 7 / -2;
        acc += 7 % -2;
    }
    printf("acc %ld\n", acc);
    return (int)(acc & 63);
}

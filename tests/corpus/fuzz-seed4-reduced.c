/* Found by `repro fuzz` with the unsafe_ignore_call_ambiguity
   miscompile injected, then minimized by the delta reducer (69 -> 17
   lines).  A loop that stores g0 while calling a helper that reads it:
   promoting g0 across the call makes the callee see a stale value.
   Under the *correct* pipeline every variant must agree.
   regenerate: repro fuzz --seed 4 --programs 1 (with the broken flag) */
int g0 = 0;
long arr0[4];
long h1(long a, long b) {
    return g0;
}
int main(void) {
    long acc = 0;
    unsigned long m0 = -1;
    long m2 = 63;
    long *p0 = &arr0[0];
    long i1 = 0;
    for (i1 = 0; i1 < 5; i1++) {
        acc += h1(((*p0) ^ m0), (m2 * (*p0)));
        g0 -= m0;
    }
    printf("acc %ld\n", acc);
    return (int)(acc & 63);
}

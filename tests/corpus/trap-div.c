/* Deliberately traps: an unguarded division by a global that stays
   zero.  Every oracle cell must trap with the *same* message — a cell
   that survives (e.g. because a pass folded the division away) is a
   miscompile.  The oracle classifies this file as "trap", not "ok". */
long zero = 0;
int main(void) {
    long x = 5;
    printf("before %ld\n", x);
    x = x / zero;
    printf("after %ld\n", x);
    return 0;
}

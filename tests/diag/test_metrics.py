"""The metrics registry, its pipeline integration, and logging setup."""

import logging

from repro.diag.log import get_logger, setup_logging
from repro.diag.metrics import (
    MetricsRegistry,
    current_registry,
    inc_metric,
    metrics_session,
    set_gauge,
)
from repro.pipeline import PipelineOptions, compile_and_run

from tests.runner.helpers import GOOD_SOURCE


class TestRegistry:
    def test_counters_accumulate_and_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        registry.set_gauge("depth", 5)
        registry.set_gauge("depth", 3)
        assert registry.get("hits") == 3
        assert registry.get("depth") == 3
        assert registry.get("absent", -1) == -1
        assert len(registry) == 2

    def test_as_dict_is_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        assert list(registry.as_dict()) == ["a", "b"]

    def test_helpers_are_noops_without_session(self):
        assert current_registry() is None
        inc_metric("x")
        set_gauge("y", 1)
        assert current_registry() is None

    def test_sessions_nest_and_restore(self):
        with metrics_session() as outer:
            inc_metric("n")
            with metrics_session() as inner:
                inc_metric("n", 10)
            assert current_registry() is outer
            assert inner.get("n") == 10
        assert current_registry() is None
        assert outer.get("n") == 1


class TestPipelinePublishes:
    def test_compile_and_run_publishes_cell_metrics(self):
        with metrics_session() as registry:
            compile_and_run(GOOD_SOURCE, PipelineOptions())
        values = registry.as_dict()
        assert values["interp.total_ops"] > 0
        assert values["interp.loads"] >= 0
        assert values["promotion.tags_promoted"] >= 1  # `total` promotes
        assert "licm.hoisted" in values

    def test_promotion_disabled_publishes_no_promotion_gauges(self):
        with metrics_session() as registry:
            compile_and_run(GOOD_SOURCE, PipelineOptions(promotion=False))
        assert "promotion.tags_promoted" not in registry.as_dict()


class TestLogging:
    def test_get_logger_roots_under_repro(self):
        assert get_logger("repro.pipeline").name == "repro.pipeline"
        assert get_logger("__main__").name == "repro.__main__"

    def test_verbosity_levels(self):
        assert setup_logging(-1).level == logging.ERROR
        assert setup_logging(0).level == logging.WARNING
        assert setup_logging(1).level == logging.INFO
        assert setup_logging(2).level == logging.DEBUG
        assert setup_logging(99).level == logging.DEBUG  # clamped
        setup_logging(0)  # leave the default behind for other tests

    def test_setup_is_idempotent(self):
        root = setup_logging(0)
        before = len(root.handlers)
        setup_logging(1)
        setup_logging(0)
        assert len(root.handlers) == before

    def test_messages_reach_the_configured_stream(self):
        import io

        stream = io.StringIO()
        setup_logging(1, stream=stream)
        get_logger("repro.test_metrics").info("hello %d", 42)
        assert "hello 42" in stream.getvalue()
        setup_logging(0)

"""The decision ledger: what promotion records, and why.

The headline scenario is the paper's section 5 question made concrete:
under MOD/REF a store through ``p`` carries the tag set ``{a, b}`` and
blocks promoting ``a``; points-to narrows the store to ``{b}`` and the
same tag promotes.  The ledger must name the exact blocker either way.
"""

import json

import pytest

from repro.diag.ledger import (
    Decision,
    DecisionLedger,
    current_ledger,
    decision_ledger,
    format_decision_table,
    record,
    trim_tag_names,
)
from repro.pipeline import Analysis, PipelineOptions, compile_source

#: `*p` really points only at `b`, but MOD/REF sees `{a, b}`
POINTER_BLOCKED = r"""
int a;
int b;

int main(void) {
    int *p;
    int *q;
    int i;
    int sum;
    q = &a;
    p = &b;
    sum = 0;
    for (i = 0; i < 10; i = i + 1) {
        a = a + i;
        *p = i;
        sum = sum + a;
    }
    printf("%d\n", sum);
    return 0;
}
"""

#: the callee's MOD/REF summary covers `g`, so the call blocks it
CALL_BLOCKED = r"""
int g;

void bump(void) {
    g = g + 1;
}

int main(void) {
    int i;
    for (i = 0; i < 10; i = i + 1) {
        g = g + i;
        bump();
    }
    printf("%d\n", g);
    return 0;
}
"""


def explain(source: str, analysis: Analysis) -> DecisionLedger:
    with decision_ledger() as ledger:
        compile_source(source, PipelineOptions(analysis=analysis))
    return ledger


class TestPromotionProvenance:
    def test_pointer_op_blocks_tag_under_modref(self):
        ledger = explain(POINTER_BLOCKED, Analysis.MODREF)
        [blocked] = ledger.query(pass_name="promotion", tag="a", action="blocked")
        assert blocked.reason == "ambiguous-via-pointer"
        [op] = blocked.detail["pointer_ops"]
        assert set(op["tags"]) == {"a", "b"}
        assert op["op"] == "store"
        # nothing was promoted in that loop
        assert not ledger.query(pass_name="promotion", tag="a", action="promoted")

    def test_points_to_unblocks_the_same_tag(self):
        ledger = explain(POINTER_BLOCKED, Analysis.POINTER)
        [promoted] = ledger.query(pass_name="promotion", tag="a", action="promoted")
        assert promoted.detail["lifted_here"] is True
        assert not ledger.query(pass_name="promotion", tag="a", action="blocked")

    def test_call_blocker_names_the_callee(self):
        ledger = explain(CALL_BLOCKED, Analysis.MODREF)
        [blocked] = ledger.query(pass_name="promotion", tag="g", action="blocked")
        assert blocked.reason == "ambiguous-via-call"
        [call] = blocked.detail["calls"]
        assert call["callee"] == "bump"
        assert call["in_mod"] is True
        assert "g" in call["mod"]

    def test_other_passes_record_too(self):
        ledger = explain(POINTER_BLOCKED, Analysis.MODREF)
        passes = {d.pass_name for d in ledger.decisions}
        assert "modref" in passes  # per-function summaries

    def test_points_to_records_refinement(self):
        ledger = explain(POINTER_BLOCKED, Analysis.POINTER)
        refined = ledger.query(pass_name="points_to", action="refined")
        assert refined
        assert any(d.detail["ops_refined"] > 0 for d in refined)


class TestLedgerMechanics:
    def test_record_is_noop_without_ledger(self):
        assert current_ledger() is None
        record("promotion", "f", "blocked", tag="x")  # must not raise
        assert current_ledger() is None

    def test_nested_ledgers_restore(self):
        with decision_ledger() as outer:
            record("p", "f", "a")
            with decision_ledger() as inner:
                record("p", "f", "b")
            assert current_ledger() is outer
            assert [d.action for d in inner.decisions] == ["b"]
        assert current_ledger() is None
        assert [d.action for d in outer.decisions] == ["a"]

    def test_query_filters_compose(self):
        ledger = DecisionLedger()
        ledger.record(Decision("promotion", "f", "blocked", loop="L1", tag="x"))
        ledger.record(Decision("promotion", "f", "promoted", loop="L1", tag="y"))
        ledger.record(Decision("licm", "g", "hoisted", loop="L2"))
        assert len(ledger.query(pass_name="promotion")) == 2
        assert len(ledger.query(loop="L1", action="promoted")) == 1
        assert ledger.query(function="g")[0].pass_name == "licm"
        assert ledger.query(tag="nope") == []

    def test_jsonl_is_one_valid_object_per_line(self):
        ledger = explain(CALL_BLOCKED, Analysis.MODREF)
        lines = ledger.jsonl().splitlines()
        assert len(lines) == len(ledger)
        for line in lines:
            payload = json.loads(line)
            assert {"pass", "function", "action"} <= set(payload)

    def test_table_renders_every_decision(self):
        ledger = explain(CALL_BLOCKED, Analysis.MODREF)
        table = format_decision_table(ledger.decisions)
        assert "ambiguous-via-call" in table
        assert "bump" in table
        assert format_decision_table([]) == "(no decisions recorded)"

    def test_trim_tag_names_caps_huge_sets(self):
        names = trim_tag_names([f"t{i:03d}" for i in range(50)], limit=5)
        assert len(names) == 6
        assert names[-1] == "... +45 more"


class TestZeroCostWhenOff:
    @pytest.mark.parametrize("analysis", [Analysis.MODREF, Analysis.POINTER])
    def test_compile_without_ledger_records_nothing(self, analysis):
        compile_source(POINTER_BLOCKED, PipelineOptions(analysis=analysis))
        assert current_ledger() is None

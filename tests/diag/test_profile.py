"""Per-loop dynamic profiling: exactness, attribution, and the
zero-overhead contract of the profile-off path."""

from repro.diag.profile import (
    block_mix,
    format_profile,
    format_profile_comparison,
    profile_loops,
)
from repro.frontend import compile_c
from repro.interp import MachineOptions, run_module

TWO_LOOPS = r"""
int a;
int b;

int main(void) {
    int i;
    int s;
    s = 0;
    for (i = 0; i < 100; i = i + 1) {
        a = a + i;
        s = s + a;
    }
    for (i = 0; i < 5; i = i + 1) {
        b = b + i;
    }
    printf("%d %d\n", s, b);
    return 0;
}
"""


def profiled_run(source: str):
    module = compile_c(source)
    run = run_module(module, options=MachineOptions(profile=True))
    return module, run


class TestExactness:
    def test_block_counts_reconstruct_the_counters(self):
        """visits x static mix == the interpreter's own dynamic counters —
        the invariant the whole block-granularity design rests on."""
        module, run = profiled_run(TWO_LOOPS)
        ops = loads = stores = 0
        for func in module.functions.values():
            for label, block in func.blocks.items():
                count = (run.block_visits or {}).get((func.name, label), 0)
                mix = block_mix(block)
                ops += count * mix.ops
                loads += count * mix.loads
                stores += count * mix.stores
        assert ops == run.counters.total_ops
        assert loads == run.counters.loads
        assert stores == run.counters.stores

    def test_profiling_never_changes_the_experiment(self):
        module_off = compile_c(TWO_LOOPS)
        off = run_module(module_off, options=MachineOptions(profile=False))
        module_on = compile_c(TWO_LOOPS)
        on = run_module(module_on, options=MachineOptions(profile=True))
        assert on.counters == off.counters
        assert on.output == off.output
        assert on.exit_code == off.exit_code


class TestAttribution:
    def test_two_loops_rank_by_dynamic_ops(self):
        module, run = profiled_run(TWO_LOOPS)
        rows = profile_loops(module, run.block_visits or {})
        assert len(rows) == 2
        hot, cool = rows  # sorted hottest first
        assert hot.ops > cool.ops
        assert hot.visits > cool.visits
        # both loops touch memory every iteration in the raw module
        assert hot.loads > 0 and hot.stores > 0
        assert cool.loads > 0 and cool.stores > 0
        # the 100-iteration loop runs ~20x the 5-iteration one
        assert hot.visits >= 10 * cool.visits

    def test_rows_carry_function_and_header(self):
        module, run = profiled_run(TWO_LOOPS)
        for row in profile_loops(module, run.block_visits or {}):
            assert row.function == "main"
            assert row.header in module.functions["main"].blocks
            assert row.depth >= 1
            assert row.as_dict()["visits"] == row.visits


class TestOverheadGuard:
    def test_profile_off_allocates_no_visit_map(self):
        module = compile_c(TWO_LOOPS)
        run = run_module(module, options=MachineOptions())
        assert run.block_visits is None

    def test_default_machine_options_are_profile_off(self):
        assert MachineOptions().profile is False

    def test_dispatch_loop_has_no_per_instruction_profiling(self):
        """The per-instruction dispatch must not consult the visit map —
        profiling hooks in once per *block*, before the instruction loop."""
        import inspect

        from repro.interp.machine import Machine

        source = inspect.getsource(Machine._exec_function)
        dispatch = source.split("for instr in", 1)[1]
        assert "visits" not in dispatch
        assert "block_visits" not in dispatch


class TestFormatting:
    def test_format_profile_table(self):
        module, run = profiled_run(TWO_LOOPS)
        rows = profile_loops(module, run.block_visits or {})
        table = format_profile(rows)
        assert "visits" in table
        assert "main@" in table
        assert format_profile([]) == "(no loops executed)"

    def test_format_profile_limit(self):
        module, run = profiled_run(TWO_LOOPS)
        rows = profile_loops(module, run.block_visits or {})
        table = format_profile(rows, limit=1)
        assert "1 cooler loop(s) not shown" in table

    def test_comparison_marks_missing_loops(self):
        module, run = profiled_run(TWO_LOOPS)
        rows = profile_loops(module, run.block_visits or {})
        table = format_profile_comparison(rows, [], "nopromo", "promo")
        assert "-" in table
        assert "loads nopromo" in table
        assert format_profile_comparison([], []) == "(no loops executed)"

"""The metrics drift gate: comparison semantics and the CLI workflow."""

import json

import pytest

from repro.cli import main
from repro.diag.drift import (
    Drift,
    compare_cells,
    format_drift_report,
    load_baseline,
    regressions,
    write_baseline,
)

CELL = "prog/modref/promo"


def snapshot(**overrides):
    base = {
        "total_ops": 1000.0,
        "loads": 100.0,
        "stores": 50.0,
        "promotion.tags_promoted": 3.0,
        "licm.hoisted": 7.0,
    }
    base.update(overrides)
    return {CELL: base}


class TestCompareCells:
    def test_identical_snapshots_have_no_drift(self):
        assert compare_cells(snapshot(), snapshot()) == []

    def test_more_dynamic_ops_is_a_regression(self):
        drifts = compare_cells(snapshot(), snapshot(total_ops=1100.0))
        [drift] = drifts
        assert drift.kind == "regression"
        assert drift.metric == "total_ops"
        assert regressions(drifts) == drifts

    def test_fewer_dynamic_ops_is_an_improvement(self):
        [drift] = compare_cells(snapshot(), snapshot(loads=90.0))
        assert drift.kind == "improvement"
        assert not regressions([drift])

    def test_losing_promotions_is_a_regression(self):
        [drift] = compare_cells(
            snapshot(), snapshot(**{"promotion.tags_promoted": 1.0})
        )
        assert drift.kind == "regression"

    def test_gaining_promotions_is_an_improvement(self):
        [drift] = compare_cells(
            snapshot(), snapshot(**{"promotion.tags_promoted": 5.0})
        )
        assert drift.kind == "improvement"

    def test_ungated_metrics_are_informational_only(self):
        [drift] = compare_cells(snapshot(), snapshot(**{"licm.hoisted": 99.0}))
        assert drift.kind == "info"
        assert not regressions([drift])

    def test_tolerance_absorbs_small_regressions(self):
        worse = snapshot(total_ops=1009.0)
        assert regressions(compare_cells(snapshot(), worse, tolerance_pct=1.0)) == []
        much_worse = snapshot(total_ops=1011.0)
        assert regressions(compare_cells(snapshot(), much_worse, tolerance_pct=1.0))

    def test_missing_cell_fails_the_gate(self):
        drifts = compare_cells(snapshot(), {})
        [drift] = drifts
        assert drift.kind == "missing-cell"
        assert regressions(drifts) == drifts

    def test_new_cell_is_reported_but_not_gated(self):
        current = dict(snapshot(), **{"other/modref/promo": {"total_ops": 1.0}})
        kinds = {d.kind for d in compare_cells(snapshot(), current)}
        assert kinds == {"new-cell"}
        assert not regressions(compare_cells(snapshot(), current))

    def test_zero_baseline_only_matches_zero(self):
        base = {CELL: {"total_ops": 0.0}}
        cur = {CELL: {"total_ops": 1.0}}
        assert regressions(compare_cells(base, cur, tolerance_pct=50.0))


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, snapshot())
        assert load_baseline(path) == snapshot()

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 999, "cells": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)


class TestFormatting:
    def test_report_sections(self):
        drifts = [
            Drift(CELL, "total_ops", 10.0, 20.0, "regression"),
            Drift(CELL, "loads", 10.0, 5.0, "improvement"),
            Drift(CELL, "licm.hoisted", 1.0, 2.0, "info"),
        ]
        text = format_drift_report(drifts, 0.0)
        assert "REGRESSIONS" in text
        assert "improvements:" in text
        assert "informational" in text
        assert "+100.00%" in text

    def test_empty_report(self):
        assert "no drift" in format_drift_report([], 0.0)


class TestDriftCommand:
    """End-to-end CLI workflow on the cheapest workload."""

    @pytest.fixture()
    def baselined(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        flags = ["--programs", "allroots",
                 "--cache-dir", str(tmp_path / "cache")]
        assert main(["drift", str(baseline), "--update"] + flags) == 0
        return baseline, flags

    def test_update_writes_all_cells(self, baselined, capsys):
        baseline, _ = baselined
        cells = load_baseline(baseline)
        assert set(cells) == {
            "allroots/modref/nopromo", "allroots/modref/promo",
            "allroots/pointer/nopromo", "allroots/pointer/promo",
        }
        for metrics in cells.values():
            assert metrics["total_ops"] > 0
            assert "interp.loads" in metrics

    def test_clean_rerun_passes(self, baselined, capsys):
        baseline, flags = baselined
        capsys.readouterr()
        assert main(["drift", str(baseline)] + flags) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_fails_the_gate(self, baselined, capsys):
        baseline, flags = baselined
        payload = json.loads(baseline.read_text())
        payload["cells"]["allroots/modref/promo"]["total_ops"] -= 10
        baseline.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["drift", str(baseline)] + flags) == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_tolerance_flag_reaches_the_gate(self, baselined, capsys):
        baseline, flags = baselined
        payload = json.loads(baseline.read_text())
        payload["cells"]["allroots/modref/promo"]["total_ops"] -= 1
        baseline.write_text(json.dumps(payload))
        assert main(["drift", str(baseline), "--tolerance", "50"] + flags) == 0

    def test_missing_baseline_hints_at_update(self, tmp_path, capsys):
        code = main(["drift", str(tmp_path / "nope.json"),
                     "--programs", "allroots",
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 2
        assert "--update" in capsys.readouterr().err

    def test_unknown_program_rejected(self, tmp_path, capsys):
        assert main(["drift", str(tmp_path / "b.json"),
                     "--programs", "nonesuch"]) == 2

"""Tests for local value numbering."""

from repro.frontend import compile_c
from repro.interp import run_module
from repro.ir import (
    BinOp,
    Function,
    IRBuilder,
    LoadI,
    MemLoad,
    Mov,
    Opcode,
    ScalarLoad,
    Tag,
    TagKind,
    TagSet,
)
from repro.opt.valuenum import run_value_numbering
from tests.helpers import run_c

G = Tag("g", TagKind.GLOBAL)
H = Tag("h", TagKind.GLOBAL)


def count(func, cls):
    return sum(1 for i in func.instructions() if isinstance(i, cls))


class TestExpressionReuse:
    def test_redundant_binop_becomes_copy(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(3)
        y = b.loadi(4)
        first = b.add(x, y)
        second = b.add(x, y)
        b.ret(second)
        stats = run_value_numbering(func, fold_constants=False)
        assert stats.expressions_reused == 1
        assert count(func, Mov) == 1

    def test_commutative_canonicalization(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(3)
        y = b.loadi(4)
        b.add(x, y)
        flipped = b.add(y, x)
        b.ret(flipped)
        stats = run_value_numbering(func, fold_constants=False)
        assert stats.expressions_reused == 1

    def test_non_commutative_not_flipped(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(3)
        y = b.loadi(4)
        b.sub(x, y)
        other = b.sub(y, x)
        b.ret(other)
        stats = run_value_numbering(func, fold_constants=False)
        assert stats.expressions_reused == 0

    def test_redefined_operand_kills_reuse(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(3)
        y = b.loadi(4)
        b.add(x, y)
        b.emit(LoadI(x, 99))      # x redefined
        again = b.add(x, y)        # different value now
        b.ret(again)
        stats = run_value_numbering(func, fold_constants=False)
        assert stats.expressions_reused == 0


class TestConstantFolding:
    def test_folds_arithmetic(self):
        result = run_module(_vn_module("return 2 + 3 * 4;"))
        assert result.exit_code == 14

    def test_division_by_zero_not_folded(self):
        # folding must not hide the runtime trap
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        x = b.loadi(1)
        z = b.loadi(0)
        q = b.div(x, z)
        b.ret(q)
        stats = run_value_numbering(func)
        assert count(func, BinOp) == 1  # the div survives


class TestLoadElimination:
    def test_repeated_sload_removed(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        first = b.sload(G)
        second = b.sload(G)
        total = b.add(first, second)
        b.ret(total)
        stats = run_value_numbering(func)
        assert stats.loads_removed == 1
        assert count(func, ScalarLoad) == 1

    def test_store_to_load_forwarding(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        v = b.loadi(42)
        b.sstore(v, G)
        loaded = b.sload(G)
        b.ret(loaded)
        stats = run_value_numbering(func)
        assert stats.loads_removed == 1
        assert count(func, ScalarLoad) == 0

    def test_intervening_store_blocks_reuse(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        first = b.sload(G)
        v = b.loadi(1)
        b.sstore(v, G)
        second = b.sload(G)   # forwarding from the store, not from first
        total = b.add(first, second)
        b.ret(total)
        run_value_numbering(func)
        # the second load forwards the stored value v
        assert count(func, ScalarLoad) == 1

    def test_store_to_other_tag_does_not_block(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        first = b.sload(G)
        v = b.loadi(1)
        b.sstore(v, H)
        second = b.sload(G)
        total = b.add(first, second)
        b.ret(total)
        stats = run_value_numbering(func)
        assert stats.loads_removed == 1

    def test_call_with_mod_kills_loads(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        first = b.sload(G)
        b.call("spoiler", mod=TagSet.of(G), ref=TagSet.empty())
        second = b.sload(G)
        total = b.add(first, second)
        b.ret(total)
        run_value_numbering(func)
        assert count(func, ScalarLoad) == 2

    def test_pure_call_preserves_loads(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        first = b.sload(G)
        b.call("pure", mod=TagSet.empty(), ref=TagSet.empty())
        second = b.sload(G)
        total = b.add(first, second)
        b.ret(total)
        stats = run_value_numbering(func)
        assert stats.loads_removed == 1

    def test_general_load_same_address(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        addr = b.loadi(0x1000)
        first = b.load(addr, TagSet.of(G))
        second = b.load(addr, TagSet.of(G))
        total = b.add(first, second)
        b.ret(total)
        stats = run_value_numbering(func)
        assert stats.loads_removed == 1


class TestEndToEnd:
    def test_semantics_preserved(self):
        src = r"""
        int g;
        int main(void) {
            int a;
            int b;
            g = 3;
            a = g + g;          /* second sload removed */
            b = g + g;          /* whole expression reused */
            printf("%d %d\n", a, b);
            return 0;
        }
        """
        module = compile_c(src)
        baseline = run_module(compile_c(src))
        from repro.opt.valuenum import run_value_numbering_module

        stats = run_value_numbering_module(module)
        result = run_module(module)
        assert result.output == baseline.output == "6 6\n"
        assert result.counters.loads < baseline.counters.loads


def _vn_module(body: str):
    module = compile_c("int main(void) { " + body + " }")
    from repro.opt.valuenum import run_value_numbering_module

    run_value_numbering_module(module)
    return module

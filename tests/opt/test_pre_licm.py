"""Tests for PRE (available-expression redundancy elimination) and LICM."""

from repro.analysis.modref import run_modref
from repro.frontend import compile_c
from repro.interp import run_module
from repro.ir import (
    CLoad,
    Function,
    IRBuilder,
    MemLoad,
    Mov,
    ScalarLoad,
    Tag,
    TagKind,
    TagSet,
)
from repro.opt.licm import run_licm, run_licm_module
from repro.opt.pre import run_pre
from tests.helpers import run_c

G = Tag("g", TagKind.GLOBAL)


def count(func, cls):
    return sum(1 for i in func.instructions() if isinstance(i, cls))


def cross_block_redundant_load() -> Function:
    """sload g in the entry and again in both branches."""
    func = Function("f")
    b = IRBuilder(func)
    entry = b.set_block(func.new_block(label="entry"))
    first = b.sload(G)
    left = func.new_block(label="left")
    right = func.new_block(label="right")
    b.cbr(first, left, right)
    b.set_block(left)
    l_val = b.sload(G)
    b.ret(l_val)
    b.set_block(right)
    r_val = b.sload(G)
    b.ret(r_val)
    return func


class TestPRE:
    def test_cross_block_load_removed(self):
        func = cross_block_redundant_load()
        stats = run_pre(func)
        assert stats.loads_removed == 2
        assert count(func, ScalarLoad) == 1

    def test_partial_availability_not_removed(self):
        # g loaded on only one path: the join's load is NOT fully
        # redundant and must survive (this pass never inserts)
        func = Function("f")
        b = IRBuilder(func)
        entry = b.set_block(func.new_block(label="entry"))
        c = b.loadi(1)
        left = func.new_block(label="left")
        join = func.new_block(label="join")
        b.cbr(c, left, join)
        b.set_block(left)
        b.sload(G)
        b.jmp(join)
        b.set_block(join)
        v = b.sload(G)
        b.ret(v)
        stats = run_pre(func)
        assert stats.loads_removed == 0
        assert count(func, ScalarLoad) == 2

    def test_store_kills_availability(self):
        func = Function("f")
        b = IRBuilder(func)
        entry = b.set_block(func.new_block(label="entry"))
        first = b.sload(G)
        mid = func.new_block(label="mid")
        b.jmp(mid)
        b.set_block(mid)
        one = b.loadi(1)
        b.sstore(one, G)
        second = b.sload(G)
        total = b.add(first, second)
        b.ret(total)
        stats = run_pre(func)
        assert stats.loads_removed == 0

    def test_pure_expression_reused_across_blocks(self):
        func = Function("f")
        b = IRBuilder(func)
        entry = b.set_block(func.new_block(label="entry"))
        x = b.loadi(3)
        y = b.loadi(4)
        first = b.add(x, y)
        nxt = func.new_block(label="next")
        b.jmp(nxt)
        b.set_block(nxt)
        second = b.add(x, y)
        b.ret(second)
        stats = run_pre(func)
        assert stats.expressions_removed == 1

    def test_end_to_end_straightline_effect(self):
        """The paper: PRE achieves most of promotion's effect in
        straight-line code by eliminating redundant loads via tags."""
        src = r"""
        int g;
        int use(int a) { return a + 1; }
        int main(void) {
            int a;
            int b;
            int c;
            g = 10;
            a = use(g);
            b = use(g);
            c = use(g);
            printf("%d\n", a + b + c);
            return 0;
        }
        """
        module = compile_c(src)
        run_modref(module)  # use() is pure: calls do not kill g
        baseline_loads = run_module(compile_c(src)).counters.loads
        for func in module.functions.values():
            run_pre(func)
        result = run_module(module)
        assert result.output == "33\n"
        assert result.counters.loads < baseline_loads


class TestLICM:
    def test_invariant_expression_hoisted(self):
        src = r"""
        int main(void) {
            int i;
            int n;
            int total;
            n = 10;
            total = 0;
            for (i = 0; i < 100; i++) {
                total += n * n;    /* n*n is invariant */
            }
            printf("%d\n", total);
            return 0;
        }
        """
        module = compile_c(src)
        baseline_ops = run_module(compile_c(src)).counters.total_ops
        run_licm_module(module)
        result = run_module(module)
        assert result.output == "10000\n"
        assert result.counters.total_ops < baseline_ops

    def test_load_of_unmodified_tag_hoisted(self):
        src = r"""
        int limit;
        int main(void) {
            int i;
            int total;
            limit = 7;
            total = 0;
            for (i = 0; i < 50; i++) { total += limit; }
            printf("%d\n", total);
            return 0;
        }
        """
        module = compile_c(src)
        baseline_loads = run_module(compile_c(src)).counters.loads
        run_licm_module(module)
        result = run_module(module)
        assert result.output == "350\n"
        assert result.counters.loads < baseline_loads

    def test_load_of_modified_tag_not_hoisted(self):
        src = r"""
        int g;
        int main(void) {
            int i;
            int total;
            total = 0;
            for (i = 0; i < 5; i++) {
                total += g;
                g = g + 1;
            }
            printf("%d %d\n", total, g);
            return 0;
        }
        """
        module = compile_c(src)
        expected = run_module(compile_c(src)).output
        run_licm_module(module)
        assert run_module(module).output == expected == "10 5\n"

    def test_division_not_speculated(self):
        src = r"""
        int main(void) {
            int i;
            int d;
            int total;
            d = 0;
            total = 0;
            for (i = 0; i < 10; i++) {
                if (d != 0) { total += 100 / d; }
            }
            printf("%d\n", total);
            return 0;
        }
        """
        module = compile_c(src)
        run_licm_module(module)
        # hoisting 100/d would trap; if we get here with the right answer
        # the pass stayed safe
        assert run_module(module).output == "0\n"

    def test_nested_loops_hoist_to_outermost(self):
        src = r"""
        int base;
        int main(void) {
            int i;
            int j;
            int total;
            base = 4;
            total = 0;
            for (i = 0; i < 10; i++) {
                for (j = 0; j < 10; j++) {
                    total += base * base;
                }
            }
            printf("%d\n", total);
            return 0;
        }
        """
        module = compile_c(src)
        run_licm_module(module)
        result = run_module(module)
        assert result.output == "1600\n"
        # base*base executes once, not 100 times: far fewer multiplies
        assert result.counters.loads <= 4

    def test_call_blocks_load_hoisting(self):
        src = r"""
        int g;
        void bump(void) { g++; }
        int main(void) {
            int i;
            int total;
            total = 0;
            for (i = 0; i < 4; i++) {
                total += g;
                bump();
            }
            printf("%d %d\n", total, g);
            return 0;
        }
        """
        module = compile_c(src)
        run_modref(module)
        expected = run_module(compile_c(src)).output
        run_licm_module(module)
        assert run_module(module).output == expected == "6 4\n"

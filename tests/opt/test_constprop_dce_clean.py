"""Tests for SCCP, dead code elimination, and basic-block cleaning."""

from repro.frontend import compile_c
from repro.interp import run_module
from repro.ir import (
    Branch,
    Function,
    IRBuilder,
    Jump,
    LoadI,
    MemLoad,
    Mov,
    ScalarLoad,
    ScalarStore,
    Tag,
    TagKind,
    TagSet,
)
from repro.opt.clean import clean_function
from repro.opt.constprop import run_sccp, run_sccp_module
from repro.opt.dce import run_dce
from tests.helpers import run_c

G = Tag("g", TagKind.GLOBAL)


def count(func, cls):
    return sum(1 for i in func.instructions() if isinstance(i, cls))


class TestSCCP:
    def test_constant_chain_folded(self):
        src = r"""
        int main(void) {
            int a;
            int b;
            a = 6;
            b = a * 7;
            return b;
        }
        """
        module = compile_c(src)
        stats = run_sccp_module(module)
        assert stats.constants_found >= 1
        assert run_module(module).exit_code == 42

    def test_dead_branch_eliminated(self):
        src = r"""
        int main(void) {
            int x;
            x = 1;
            if (x > 0) { return 10; }
            return 20;
        }
        """
        module = compile_c(src)
        stats = run_sccp_module(module)
        assert stats.branches_folded >= 1
        assert run_module(module).exit_code == 10
        main = module.functions["main"]
        assert count(main, Branch) == 0

    def test_constants_through_phi(self):
        # both arms assign the same constant: SCCP proves the merge constant
        src = r"""
        int main(void) {
            int x;
            int y;
            x = 1;
            if (x) { y = 5; } else { y = 5; }
            return y + 1;
        }
        """
        module = compile_c(src)
        run_sccp_module(module)
        assert run_module(module).exit_code == 6

    def test_divergent_phi_stays_bottom(self):
        src = r"""
        int pick(int c) {
            int y;
            if (c) { y = 5; } else { y = 9; }
            return y;
        }
        int main(void) { return pick(1) + pick(0); }
        """
        module = compile_c(src)
        run_sccp_module(module)
        assert run_module(module).exit_code == 14

    def test_unreachable_loop_removed(self):
        src = r"""
        int main(void) {
            if (0) {
                while (1) { }
            }
            return 7;
        }
        """
        module = compile_c(src)
        run_sccp_module(module)
        result = run_module(module)
        assert result.exit_code == 7

    def test_loads_are_not_assumed_constant(self):
        src = r"""
        int g;
        void set(void) { g = 3; }
        int main(void) {
            g = 1;
            set();
            return g;       /* must reload: 3, not 1 */
        }
        """
        module = compile_c(src)
        run_sccp_module(module)
        assert run_module(module).exit_code == 3


class TestDCE:
    def test_unused_pure_ops_removed(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        dead = b.loadi(1)
        dead2 = b.add(dead, dead)
        live = b.loadi(2)
        b.ret(live)
        stats = run_dce(func)
        assert stats.removed == 2
        assert count(func, LoadI) == 1

    def test_dead_load_removed(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        b.sload(G)
        b.ret()
        stats = run_dce(func)
        assert stats.removed == 1
        assert count(func, ScalarLoad) == 0

    def test_store_never_removed(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        v = b.loadi(1)
        b.sstore(v, G)
        b.ret()
        run_dce(func)
        assert count(func, ScalarStore) == 1

    def test_call_never_removed(self):
        src = r"""
        int g;
        int bump(void) { g++; return g; }
        int main(void) {
            bump();      /* result unused but side effect must stay */
            return g;
        }
        """
        module = compile_c(src)
        for func in module.functions.values():
            run_dce(func)
        assert run_module(module).exit_code == 1

    def test_transitive_chain_removed(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        a = b.loadi(1)
        c = b.add(a, a)
        d = b.add(c, c)   # only d is dead at first
        b.ret(a)
        stats = run_dce(func)
        # removing d makes c dead, which makes nothing else dead (a is used)
        assert stats.removed == 2

    def test_self_move_removed(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        a = b.loadi(1)
        func.blocks[func.entry].append(Mov(a, a))
        b.ret(a)
        stats = run_dce(func)
        assert stats.removed == 1


class TestClean:
    def test_same_target_branch_folded(self):
        func = Function("f")
        b = IRBuilder(func)
        entry = b.start_block()
        c = b.loadi(1)
        nxt = func.new_block(label="N")
        entry_block = func.block(func.entry)
        entry_block.append(Branch(c, "N", "N"))
        nxt.append(__import__("repro.ir", fromlist=["Ret"]).Ret())
        stats = clean_function(func)
        assert stats.branches_folded == 1

    def test_empty_block_skipped(self):
        func = Function("f")
        b = IRBuilder(func)
        entry = b.start_block()
        b.jmp("E")
        empty = func.new_block(label="E")
        empty.append(Jump("X"))
        target = func.new_block(label="X")
        from repro.ir import Ret

        target.append(Ret())
        stats = clean_function(func)
        assert "E" not in func.blocks
        assert stats.empty_blocks_removed >= 1

    def test_chain_merged(self):
        src = r"""
        int main(void) {
            int a;
            a = 1;
            a = a + 1;
            a = a + 1;
            return a;
        }
        """
        module = compile_c(src)
        main = module.functions["main"]
        before = len(main.blocks)
        clean_function(main)
        assert len(main.blocks) <= before
        assert run_module(module).exit_code == 3

    def test_promotion_leftover_pads_removed(self):
        """Landing pads and exits that promotion never used disappear —
        the paper: 'empty blocks are automatically removed after
        optimization'."""
        from repro.analysis.loops import normalize_loops

        src = r"""
        int main(void) {
            int i;
            int s;
            s = 0;
            for (i = 0; i < 4; i++) { s += i; }
            return s;
        }
        """
        module = compile_c(src)
        main = module.functions["main"]
        normalize_loops(main)   # inserts pads/exits
        with_pads = len(main.blocks)
        clean_function(main)
        assert len(main.blocks) < with_pads
        assert run_module(module).exit_code == 6

    def test_unreachable_removed(self):
        func = Function("f")
        b = IRBuilder(func)
        b.start_block()
        from repro.ir import Ret

        b.ret()
        orphan = func.new_block(label="Z")
        orphan.append(Ret())
        stats = clean_function(func)
        assert "Z" not in func.blocks
        assert stats.unreachable_removed == 1

"""Reproduction of the paper's Figure 2 worked example.

The figure shows a triply nested loop (headers B1 ⊃ B3 ⊃ B5) with:

* block B1: ``SST [C]`` and ``JSR [A]`` — C stored explicitly, A referenced
  ambiguously through the call;
* block B2 (inside B1, outside B3... actually the landing pad of B3):
  ``PLD [B 2]`` — a pointer-based load that references B and 2 ambiguously;
* block B3: ``SST [B]`` — B stored explicitly;
* block B4: ``JSR [B]`` — B referenced ambiguously through a call;
* block B5: ``SLD [A]`` — A loaded explicitly;
* block B0 (before the outer loop): ``SLD [C]``.

The paper's information table:

======  ==========  ===========
Loop    EXPLICIT    AMBIGUOUS
======  ==========  ===========
B1      A, B, C     A, B, 2
B3      A, B        B, 2
B5      A           (empty)
======  ==========  ===========

giving PROMOTABLE(B1) = {C}, PROMOTABLE(B3) = {A}, PROMOTABLE(B5) = {A};
LIFT(B1) = {C}, LIFT(B3) = {A}, LIFT(B5) = {} — A is lifted around B3, not
B5, because B3 is the outermost loop where it is promotable.

We rebuild that loop nest in IL and check the analysis reproduces exactly
those sets, then that the rewrite inserts the loads/stores where Figure 2
puts them (C around B1, A around B3) and converts the references to
copies.
"""

import pytest

from repro.analysis.loops import find_loops
from repro.opt.promotion import (
    gather_block_info,
    promote_function,
    solve_loop_equations,
)
from repro.ir import (
    Call,
    Function,
    IRBuilder,
    MemLoad,
    Mov,
    ScalarLoad,
    ScalarStore,
    Tag,
    TagKind,
    TagSet,
    verify_function,
)

A = Tag("A", TagKind.GLOBAL)
B = Tag("B", TagKind.GLOBAL)
C = Tag("C", TagKind.GLOBAL)
TWO = Tag("2", TagKind.GLOBAL)  # the figure's second ambiguous tag


def figure2_function() -> Function:
    """The Figure 2 CFG, with landing pads (B0, B2, B4') and exits
    (B8, B9) just as the paper's compiler inserts them."""
    func = Function("fig2")
    b = IRBuilder(func)

    # B0: landing pad of loop B1 (the figure shows SLD [C] placed here by
    # promotion; before promotion it is empty except for control flow)
    b0 = b.set_block(func.new_block(label="B0"))
    cond = b.loadi(1, hint="cond")
    b.jmp("B1")

    # B1: outer loop header. SST [C]; JSR [A]
    b1 = func.new_block(label="B1")
    b.set_block(b1)
    b.sstore(cond, C)
    b.emit(Call(None, "external", [], mod=TagSet.of(A), ref=TagSet.empty()))
    b.jmp("B2")

    # B2: landing pad of loop B3. PLD [B 2]
    b2 = func.new_block(label="B2")
    b.set_block(b2)
    ptr = b.loadi(0, hint="ptr")
    b.load(ptr, TagSet.of(B, TWO))
    b.jmp("B3")

    # B3: middle loop header. SST [B]
    b3 = func.new_block(label="B3")
    b.set_block(b3)
    b.sstore(cond, B)
    b.jmp("B4")

    # B4: JSR [B], landing pad side of loop B5
    b4 = func.new_block(label="B4")
    b.set_block(b4)
    b.emit(Call(None, "external2", [], mod=TagSet.empty(), ref=TagSet.of(B)))
    b.jmp("B5")

    # B5: inner loop header. SLD [A]
    b5 = func.new_block(label="B5")
    b.set_block(b5)
    b.sload(A)
    b.jmp("B6")

    # B6: inner latch: loop back to B5 or leave to B7
    b6 = func.new_block(label="B6")
    b.set_block(b6)
    b.cbr(cond, "B5", "B7")

    # B7: middle latch: loop back to B3 or leave to B8
    b7 = func.new_block(label="B7")
    b.set_block(b7)
    b.cbr(cond, "B3", "B8")

    # B8: dedicated exit of loop B3; also outer latch path. SST [A] lands
    # here after promotion
    b8 = func.new_block(label="B8")
    b.set_block(b8)
    b.cbr(cond, "B1", "B9")

    # B9: exit of loop B1. SST [C] lands here after promotion
    b9 = func.new_block(label="B9")
    b.set_block(b9)
    b.ret()

    verify_function(func)
    return func


class TestFigure2Information:
    def test_loop_structure(self):
        func = figure2_function()
        forest = find_loops(func)
        headers = {loop.header for loop in forest.loops}
        assert headers == {"B1", "B3", "B5"}
        assert forest.loop_with_header("B5").parent is forest.loop_with_header("B3")
        assert forest.loop_with_header("B3").parent is forest.loop_with_header("B1")

    def test_block_information(self):
        func = figure2_function()
        explicit, ambiguous = gather_block_info(func)
        assert explicit["B1"] == {C}
        assert ambiguous["B1"] == {A}
        assert ambiguous["B2"] == {B, TWO}
        assert explicit["B3"] == {B}
        assert ambiguous["B4"] == {B}
        assert explicit["B5"] == {A}
        assert ambiguous["B5"] == set()

    def test_loop_equations_match_paper_table(self):
        func = figure2_function()
        forest = find_loops(func)
        explicit, ambiguous = gather_block_info(func)
        sets = solve_loop_equations(func, forest, explicit, ambiguous)

        assert sets["B1"].explicit == {A, B, C}
        assert sets["B1"].ambiguous == {A, B, TWO}
        # B2 (the PLD [B 2]) is loop B3's landing pad, *outside* the
        # natural loop, so tag 2 does not poison B3 — only B1
        assert sets["B3"].explicit == {A, B}
        assert sets["B3"].ambiguous == {B}
        assert sets["B5"].explicit == {A}
        assert sets["B5"].ambiguous == set()

        assert sets["B1"].promotable == {C}
        assert sets["B3"].promotable == {A}
        assert sets["B5"].promotable == {A}

        assert sets["B1"].lift == {C}
        assert sets["B3"].lift == {A}
        assert sets["B5"].lift == set()  # A is already lifted around B3


class TestFigure2Rewrite:
    def test_rewrite_matches_figure(self):
        func = figure2_function()
        report = promote_function(func)
        verify_function(func)

        assert report.promoted_tags == {A, C}
        assert report.lifted_in("B1") == frozenset({C})
        assert report.lifted_in("B3") == frozenset({A})
        assert report.lifted_in("B5") == frozenset()

        # the SLD [A] in B5 became a copy (the figure's CP)
        b5_ops = func.block("B5").instrs
        assert not any(isinstance(i, ScalarLoad) for i in b5_ops)
        assert any(isinstance(i, Mov) for i in b5_ops)

        # the SST [C] in B1 became a copy
        b1_ops = func.block("B1").instrs
        assert not any(isinstance(i, ScalarStore) for i in b1_ops)

        # SLD [C] appears in loop B1's landing pad (the figure's B0)
        forest = find_loops(func)
        pad_b1 = forest.loop_with_header("B1").preheader(func)
        pad_loads = [
            i for i in func.block(pad_b1).instrs if isinstance(i, ScalarLoad)
        ]
        assert [i.tag for i in pad_loads] == [C]

        # SLD [A] appears in loop B3's landing pad (the figure's B2 side)
        pad_b3 = forest.loop_with_header("B3").preheader(func)
        pad_loads = [
            i for i in func.block(pad_b3).instrs if isinstance(i, ScalarLoad)
        ]
        assert [i.tag for i in pad_loads] == [A]

        # SST [C] at B1's exits, and *no* store of A there (A is stored
        # around B3, but A is never stored inside the loop -> with the
        # store-only-if-stored refinement the demotion store is elided;
        # C *is* stored in B1, so its demotion store must exist)
        exit_stores = [
            (label, i.tag)
            for loop in forest.loops
            for label in loop.exit_blocks(func)
            for i in func.block(label).instrs
            if isinstance(i, ScalarStore)
        ]
        assert (next(iter(forest.loop_with_header("B1").exit_blocks(func))), C) in exit_stores

    def test_paper_exact_mode_stores_read_only_tags_too(self):
        """Without the store-back refinement, A is also stored at B3's
        exits — exactly the Figure 2 drawing."""
        from repro.opt.promotion import PromotionOptions

        func = figure2_function()
        report = promote_function(
            func, options=PromotionOptions(store_only_if_stored=False)
        )
        forest = find_loops(func)
        b3_exits = forest.loop_with_header("B3").exit_blocks(func)
        stored = {
            i.tag
            for label in b3_exits
            for i in func.block(label).instrs
            if isinstance(i, ScalarStore)
        }
        assert A in stored

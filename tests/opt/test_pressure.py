"""Tests for the pressure-aware promotion throttle (section 3.4)."""

from repro.analysis.loops import normalize_loops
from repro.analysis.modref import run_modref
from repro.frontend import compile_c
from repro.interp import run_module
from repro.opt.pressure import (
    estimate_loop_pressure,
    plan_promotions,
    tag_use_frequency,
)
from repro.opt.promotion import PromotionOptions, promote_module
from repro.pipeline import PipelineOptions
from repro.regalloc import RegAllocOptions
from tests.helpers import run_c, run_optimized

MANY_GLOBALS = r"""
int a; int b; int c; int d; int e; int f; int g; int h;

int main(void) {
    int i;
    for (i = 0; i < 100; i++) {
        a += i; b += i; c += i; d += i;
        e += i; f += i; g += i; h += i;
        a += b;        /* a and b are the hottest tags */
        b += a;
    }
    printf("%d %d %d %d %d %d %d %d\n", a, b, c, d, e, f, g, h);
    return 0;
}
"""


def analyzed_main(src):
    module = compile_c(src)
    run_modref(module)
    func = module.functions["main"]
    forest = normalize_loops(func)
    return module, func, forest


class TestEstimates:
    def test_pressure_positive_in_loop(self):
        module, func, forest = analyzed_main(MANY_GLOBALS)
        loop = forest.loops[0]
        assert estimate_loop_pressure(func, loop) >= 2

    def test_frequency_ranks_hot_tags_first(self):
        module, func, forest = analyzed_main(MANY_GLOBALS)
        loop = forest.loops[0]
        freq = tag_use_frequency(func, loop)
        by_name = {t.name: n for t, n in freq.items()}
        assert by_name["a"] > by_name["c"]
        assert by_name["b"] > by_name["h"]


class TestPlan:
    def test_generous_budget_keeps_everything(self):
        module, func, forest = analyzed_main(MANY_GLOBALS)
        from repro.opt.promotion import gather_block_info, solve_loop_equations

        explicit, ambiguous = gather_block_info(func)
        sets = solve_loop_equations(func, forest, explicit, ambiguous)
        promotable = {h: s.promotable for h, s in sets.items()}
        plan = plan_promotions(func, forest, promotable, num_registers=256)
        assert not plan.dropped

    def test_tight_budget_drops_cold_tags_first(self):
        module, func, forest = analyzed_main(MANY_GLOBALS)
        from repro.opt.promotion import gather_block_info, solve_loop_equations

        explicit, ambiguous = gather_block_info(func)
        sets = solve_loop_equations(func, forest, explicit, ambiguous)
        promotable = {h: s.promotable for h, s in sets.items()}
        header = forest.loops[0].header
        base = plan_promotions(func, forest, promotable, 256).base_pressure[header]
        # allow exactly 2 promoted homes above the base pressure
        plan = plan_promotions(
            func, forest, promotable, num_registers=base + 2, reserve=0
        )
        kept = {t.name for t in plan.allowed[header]}
        assert len(kept) == 2
        assert kept == {"a", "b"}  # the hottest tags survive


class TestEndToEnd:
    def test_budgeted_promotion_preserves_semantics(self):
        expected = run_c(MANY_GLOBALS).output
        options = PipelineOptions(
            promotion_options=PromotionOptions(pressure_budget=10),
            regalloc=RegAllocOptions(num_registers=10),
        )
        cell = run_optimized(MANY_GLOBALS, options)
        assert cell.output == expected

    def test_budget_never_worse_than_no_promotion_on_tight_machine(self):
        """The throttle's guarantee is one-sided: it may leave promotion
        wins on the table (it is a conservative estimate), but budgeted
        promotion must never lose to disabling promotion outright."""
        regalloc = RegAllocOptions(num_registers=12)
        nopromo = run_optimized(
            MANY_GLOBALS, PipelineOptions(promotion=False, regalloc=regalloc)
        )
        aware = run_optimized(
            MANY_GLOBALS,
            PipelineOptions(
                promotion=True,
                regalloc=regalloc,
                promotion_options=PromotionOptions(pressure_budget=12),
            ),
        )
        assert aware.output == nopromo.output
        assert aware.counters.total_ops <= nopromo.counters.total_ops
        assert aware.counters.memory_ops() <= nopromo.counters.memory_ops()

    def test_budget_allows_full_promotion_when_roomy(self):
        module = compile_c(MANY_GLOBALS)
        run_modref(module)
        reports = promote_module(
            module, PromotionOptions(pressure_budget=128)
        )
        assert len(reports["main"].promoted_tags) == 8
        assert run_module(module).exit_code == 0

    def test_zero_budget_disables_promotion(self):
        module = compile_c(MANY_GLOBALS)
        run_modref(module)
        reports = promote_module(module, PromotionOptions(pressure_budget=0))
        assert reports["main"].promoted_tags == set()
        assert run_module(module).exit_code == 0

"""Figure 1 — the promotion data-flow equations, unit-tested directly on
synthetic loop nests (independent of any front end or rewrite)."""

from repro.analysis.loops import find_loops
from repro.ir import Function, IRBuilder, Tag, TagKind
from repro.opt.promotion import PromotionOptions, solve_loop_equations

from tests.analysis.test_dominators import build_cfg

A = Tag("A", TagKind.GLOBAL)
B = Tag("B", TagKind.GLOBAL)
C = Tag("C", TagKind.GLOBAL)
ARR = Tag("arr", TagKind.GLOBAL, is_scalar=False)


def nest() -> tuple[Function, object]:
    """outer loop H1 { inner loop H2 }, plus exit X."""
    func = build_cfg(
        {
            "A0": ("H1",),
            "H1": ("H2", "X"),
            "H2": ("B2", "L1"),
            "B2": ("H2",),
            "L1": ("H1",),
            "X": (),
        },
        "A0",
    )
    return func, find_loops(func)


def solve(func, forest, explicit, ambiguous, **opts):
    options = PromotionOptions(**opts) if opts else None
    full_explicit = {label: explicit.get(label, set()) for label in func.blocks}
    full_ambiguous = {label: ambiguous.get(label, set()) for label in func.blocks}
    return solve_loop_equations(func, forest, full_explicit, full_ambiguous, options)


class TestEquations:
    def test_equation_1_and_2_aggregate_blocks(self):
        func, forest = nest()
        sets = solve(
            func, forest,
            explicit={"H1": {A}, "B2": {B}},
            ambiguous={"L1": {C}},
        )
        assert sets["H1"].explicit == {A, B}
        assert sets["H1"].ambiguous == {C}
        assert sets["H2"].explicit == {B}
        assert sets["H2"].ambiguous == set()

    def test_equation_3_promotable_is_difference(self):
        func, forest = nest()
        sets = solve(
            func, forest,
            explicit={"H1": {A, B}},
            ambiguous={"H1": {B}},
        )
        assert sets["H1"].promotable == {A}

    def test_equation_4_outermost_lifts(self):
        func, forest = nest()
        sets = solve(func, forest, explicit={"B2": {A}}, ambiguous={})
        # A is promotable in both loops; lift only around the outer one
        assert sets["H1"].promotable == {A}
        assert sets["H2"].promotable == {A}
        assert sets["H1"].lift == {A}
        assert sets["H2"].lift == set()

    def test_equation_4_inner_lift_when_outer_poisoned(self):
        func, forest = nest()
        sets = solve(
            func, forest,
            explicit={"B2": {A}},
            ambiguous={"L1": {A}},   # L1 is in the outer loop only
        )
        assert sets["H1"].promotable == set()
        assert sets["H2"].promotable == {A}
        assert sets["H2"].lift == {A}

    def test_non_scalar_tags_never_promotable(self):
        func, forest = nest()
        sets = solve(func, forest, explicit={"B2": {ARR, A}}, ambiguous={})
        assert sets["H2"].promotable == {A}
        assert ARR in sets["H2"].explicit

    def test_ambiguity_anywhere_in_loop_poisons_whole_loop(self):
        func, forest = nest()
        sets = solve(
            func, forest,
            explicit={"H2": {A}},
            ambiguous={"B2": {A}},   # same loop, different block
        )
        assert sets["H2"].promotable == set()

    def test_tag_untouched_by_loop_not_promotable(self):
        func, forest = nest()
        sets = solve(func, forest, explicit={"A0": {A}}, ambiguous={})
        # A is referenced only outside the loops
        assert sets["H1"].promotable == set()
        assert sets["H2"].promotable == set()

    def test_max_promoted_per_loop_throttle(self):
        func, forest = nest()
        sets = solve(
            func, forest,
            explicit={"B2": {A, B, C}},
            ambiguous={},
            max_promoted_per_loop=2,
        )
        assert len(sets["H2"].promotable) == 2

"""Behavioural tests for scalar register promotion on real C programs."""

from repro.analysis.modref import run_modref
from repro.frontend import compile_c
from repro.interp import run_module
from repro.opt.promotion import PromotionOptions, promote_module
from repro.pipeline import Analysis, PipelineOptions
from tests.helpers import run_all_variants, run_optimized


def promote(src: str, options: PromotionOptions | None = None):
    module = compile_c(src)
    run_modref(module)
    reports = promote_module(module, options)
    return module, reports


class TestWhatPromotes:
    def test_global_in_simple_loop(self):
        src = r"""
        int g;
        int main(void) {
            int i;
            for (i = 0; i < 10; i++) { g = g + i; }
            return g;
        }
        """
        module, reports = promote(src)
        assert {t.name for t in reports["main"].promoted_tags} == {"g"}
        result = run_module(module)
        assert result.exit_code == 45

    def test_array_never_promotes(self):
        src = r"""
        int arr[8];
        int main(void) {
            int i;
            for (i = 0; i < 8; i++) { arr[i] = i; }
            return arr[3];
        }
        """
        module, reports = promote(src)
        assert reports["main"].promoted_tags == set()

    def test_call_blocks_promotion(self):
        src = r"""
        int g;
        void touch(void) { g = g + 1; }
        int main(void) {
            int i;
            for (i = 0; i < 5; i++) {
                g = g + 2;
                touch();
            }
            return g;
        }
        """
        module, reports = promote(src)
        # touch() modifies g: ambiguous inside main's loop
        assert "g" not in {t.name for t in reports["main"].promoted_tags}
        # but inside touch there is no loop at all, so nothing promotes
        assert reports["touch"].promoted_tags == set()
        assert run_module(module).exit_code == 15

    def test_pure_call_does_not_block(self):
        src = r"""
        int g;
        int twice(int x) { return x * 2; }
        int main(void) {
            int i;
            for (i = 0; i < 4; i++) { g = g + twice(i); }
            return g;
        }
        """
        module, reports = promote(src)
        assert {t.name for t in reports["main"].promoted_tags} == {"g"}
        assert run_module(module).exit_code == 12

    def test_aliased_global_blocked_without_pointer_analysis(self):
        src = r"""
        int g;
        int sink[4];
        int *p;
        int main(void) {
            int i;
            p = sink;
            for (i = 0; i < 4; i++) {
                g = g + 1;
                p[i] = g;
            }
            return g;
        }
        """
        # g's address is never taken, so even MOD/REF keeps p's tag sets
        # away from g and the promotion succeeds
        module, reports = promote(src)
        assert "g" in {t.name for t in reports["main"].promoted_tags}

    def test_address_taken_global_blocked_by_modref(self):
        src = r"""
        int g;
        int *alias;
        int main(void) {
            int i;
            alias = &g;
            for (i = 0; i < 4; i++) {
                g = g + 1;
                *alias = g;
            }
            return g;
        }
        """
        module, reports = promote(src)
        assert "g" not in {t.name for t in reports["main"].promoted_tags}

    def test_lift_to_outermost_loop(self):
        src = r"""
        int g;
        int main(void) {
            int i;
            int j;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 3; j++) {
                    g = g + 1;
                }
            }
            return g;
        }
        """
        module, reports = promote(src)
        report = reports["main"]
        lifted_counts = [len(l.lifted) for l in report.loops]
        # g is lifted around exactly one loop (the outer one)
        assert sum(lifted_counts) == 1
        outer = max(report.loops, key=lambda l: 0 if not l.lifted else 1)
        assert run_module(module).exit_code == 9

    def test_throttle_limits_promotions(self):
        src = r"""
        int a; int b; int c; int d;
        int main(void) {
            int i;
            for (i = 0; i < 3; i++) {
                a += 1; b += 1; c += 1; d += 1;
            }
            return a + b + c + d;
        }
        """
        module, reports = promote(
            src, PromotionOptions(max_promoted_per_loop=2)
        )
        assert len(reports["main"].promoted_tags) == 2
        assert run_module(module).exit_code == 12


class TestEndToEndCorrectness:
    def test_variants_agree_on_aliasing_program(self):
        src = r"""
        int acc;
        int data[6];
        int *cursor;
        int consume(void) {
            int v;
            v = *cursor;
            cursor = cursor + 1;
            return v;
        }
        int main(void) {
            int i;
            int total;
            for (i = 0; i < 6; i++) { data[i] = i * 7 % 5; }
            cursor = data;
            total = 0;
            for (i = 0; i < 6; i++) {
                acc = acc * 2 + 1;
                total += consume();
            }
            printf("%d %d\n", acc, total);
            return 0;
        }
        """
        run_all_variants(src)

    def test_promotion_reduces_memory_traffic(self):
        src = r"""
        int counter;
        int main(void) {
            int i;
            for (i = 0; i < 1000; i++) { counter += i; }
            printf("%d\n", counter);
            return 0;
        }
        """
        cells = run_all_variants(src)
        without = cells["modref/nopromo"].counters
        with_ = cells["modref/promo"].counters
        assert with_.stores < without.stores
        assert with_.loads < without.loads
        # the loop ran 1000 iterations with a load+store per iteration;
        # promotion leaves O(1) memory traffic
        assert with_.stores <= 5
        assert with_.loads <= 5

    def test_conditional_store_preserved(self):
        src = r"""
        int flag;
        int main(void) {
            int i;
            for (i = 0; i < 10; i++) {
                if (i == 20) { flag = 99; }
            }
            printf("%d\n", flag);
            return 0;
        }
        """
        cells = run_all_variants(src)
        assert cells["modref/promo"].output == "0\n"

    def test_loop_never_entered(self):
        src = r"""
        int g = 5;
        int main(void) {
            int i;
            for (i = 0; i < 0; i++) { g = 77; }
            printf("%d\n", g);
            return 0;
        }
        """
        cells = run_all_variants(src)
        assert cells["modref/promo"].output == "5\n"

    def test_break_paths_demote_correctly(self):
        src = r"""
        int best;
        int main(void) {
            int i;
            for (i = 0; i < 100; i++) {
                best = best + i;
                if (best > 50) { break; }
            }
            printf("%d\n", best);
            return 0;
        }
        """
        run_all_variants(src)

    def test_multiple_disjoint_loops_same_tag(self):
        src = r"""
        int g;
        int main(void) {
            int i;
            for (i = 0; i < 5; i++) { g += 1; }
            printf("%d ", g);
            for (i = 0; i < 5; i++) { g += 2; }
            printf("%d\n", g);
            return 0;
        }
        """
        cells = run_all_variants(src)
        assert cells["modref/promo"].output == "5 15\n"

    def test_global_read_in_loop_written_outside(self):
        src = r"""
        int scale;
        int main(void) {
            int i;
            int total;
            scale = 3;
            total = 0;
            for (i = 0; i < 8; i++) { total += i * scale; }
            scale = total;
            printf("%d\n", scale);
            return 0;
        }
        """
        cells = run_all_variants(src)
        assert cells["modref/promo"].output == "84\n"

"""Tests for pointer-based promotion (section 3.3) — the Figure 3 pattern."""

from repro.analysis.modref import run_modref
from repro.frontend import compile_c
from repro.interp import MachineOptions, run_module
from repro.opt.licm import run_licm_module
from repro.opt.pointer_promotion import promote_pointers_module
from repro.pipeline import Analysis, PipelineOptions
from tests.helpers import run_c, run_optimized

FIGURE3 = r"""
#define DIM_X 6
#define DIM_Y 8

int A[DIM_X][DIM_Y];
int B[DIM_X];

int main(void) {
    int i;
    int j;
    for (i = 0; i < DIM_X; i++) {
        for (j = 0; j < DIM_Y; j++) {
            A[i][j] = i + j;
        }
    }
    for (i = 0; i < DIM_X; i++) {
        B[i] = 0;
        for (j = 0; j < DIM_Y; j++) {
            B[i] += A[i][j];
        }
    }
    printf("%d %d\n", B[0], B[DIM_X - 1]);
    return 0;
}
"""


def pipeline_with_pointer_promotion() -> PipelineOptions:
    return PipelineOptions(
        analysis=Analysis.MODREF, promotion=True, pointer_promotion=True
    )


class TestFigure3:
    def test_reference_promoted(self):
        module = compile_c(FIGURE3)
        run_modref(module)
        run_licm_module(module)  # exposes the invariant base &B[i]
        reports = promote_pointers_module(module)
        assert reports["main"].promoted_bases >= 1
        result = run_module(module)
        assert result.output == "28 68\n"

    def test_removes_inner_loop_traffic(self):
        baseline = run_optimized(FIGURE3, PipelineOptions(pointer_promotion=False))
        promoted = run_optimized(FIGURE3, pipeline_with_pointer_promotion())
        assert promoted.output == baseline.output == "28 68\n"
        # the B[i] load+store per inner iteration becomes one load+store
        # per outer iteration
        assert promoted.counters.stores < baseline.counters.stores
        assert promoted.counters.loads < baseline.counters.loads

    def test_scalar_promotion_alone_cannot_do_this(self):
        scalar_only = run_optimized(
            FIGURE3, PipelineOptions(promotion=True, pointer_promotion=False)
        )
        both = run_optimized(FIGURE3, pipeline_with_pointer_promotion())
        assert both.counters.stores < scalar_only.counters.stores


class TestSafetyConditions:
    def test_aliasing_second_pointer_blocks(self):
        # a second access path to B inside the loop must block promotion
        src = r"""
        int B[4];
        int main(void) {
            int i;
            int j;
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 4; j++) {
                    B[i] += 1;
                    B[j] += 10;   /* different base register, same tag */
                }
            }
            printf("%d %d %d %d\n", B[0], B[1], B[2], B[3]);
            return 0;
        }
        """
        expected = run_c(src).output
        cell = run_optimized(src, pipeline_with_pointer_promotion())
        assert cell.output == expected

    def test_variant_base_blocks(self):
        # base address changes inside the loop: not promotable
        src = r"""
        int B[8];
        int main(void) {
            int i;
            for (i = 0; i < 8; i++) {
                B[i] = i * i;     /* address varies with i */
            }
            printf("%d\n", B[5]);
            return 0;
        }
        """
        expected = run_c(src).output
        cell = run_optimized(src, pipeline_with_pointer_promotion())
        assert cell.output == expected == "25\n"

    def test_call_touching_tag_blocks(self):
        src = r"""
        int B[4];
        void spoil(void) { B[2] = 99; }
        int main(void) {
            int i;
            int j;
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 3; j++) {
                    B[i] += 1;
                    spoil();
                }
            }
            printf("%d %d\n", B[1], B[2]);
            return 0;
        }
        """
        expected = run_c(src).output
        cell = run_optimized(src, pipeline_with_pointer_promotion())
        assert cell.output == expected

    def test_read_only_reference_gets_no_store(self):
        src = r"""
        int table[4];
        int total;
        int main(void) {
            int i;
            int j;
            table[2] = 5;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 10; j++) {
                    total += table[2];
                }
            }
            printf("%d\n", total);
            return 0;
        }
        """
        expected = run_c(src).output
        cell = run_optimized(src, pipeline_with_pointer_promotion())
        assert cell.output == expected == "150\n"

    def test_through_heap_pointer(self):
        src = r"""
        int main(void) {
            int *buf;
            int i;
            int j;
            buf = (int *) malloc(16);
            buf[1] = 0;
            for (i = 0; i < 5; i++) {
                for (j = 0; j < 6; j++) {
                    buf[1] += i + j;
                }
            }
            printf("%d\n", buf[1]);
            return 0;
        }
        """
        expected = run_c(src).output
        opts = PipelineOptions(
            analysis=Analysis.POINTER, promotion=True, pointer_promotion=True
        )
        cell = run_optimized(src, opts)
        assert cell.output == expected
